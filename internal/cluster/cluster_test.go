package cluster

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"matchmake/internal/core"
	"matchmake/internal/graph"
	"matchmake/internal/rendezvous"
	"matchmake/internal/sim"
	"matchmake/internal/topology"
)

func newMemCluster(t *testing.T, n int, opts Options) *Cluster {
	t.Helper()
	tr, err := NewMemTransport(topology.Complete(n), rendezvous.Checkerboard(n), 0)
	if err != nil {
		t.Fatal(err)
	}
	c := New(tr, opts)
	t.Cleanup(func() { c.Close() })
	return c
}

func TestClusterRegisterLocate(t *testing.T) {
	c := newMemCluster(t, 16, Options{})
	srv, err := c.Register("svc", 5)
	if err != nil {
		t.Fatal(err)
	}
	for client := graph.NodeID(0); client < 16; client++ {
		e, err := c.Locate(client, "svc")
		if err != nil {
			t.Fatalf("locate from %d: %v", client, err)
		}
		if e.Addr != 5 {
			t.Fatalf("locate from %d = %d; want 5", client, e.Addr)
		}
	}
	if _, err := c.Locate(0, "nope"); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("locate missing port: %v; want ErrNotFound", err)
	}

	// Migrate and relocate: the fresher posting must win everywhere.
	if err := srv.Migrate(11); err != nil {
		t.Fatal(err)
	}
	for client := graph.NodeID(0); client < 16; client++ {
		e, err := c.Locate(client, "svc")
		if err != nil || e.Addr != 11 {
			t.Fatalf("post-migrate locate from %d = %v, %v; want 11", client, e, err)
		}
	}

	m := c.Metrics()
	if m.Locates < 32 || m.Posts != 1 {
		t.Fatalf("metrics = %+v; want ≥32 locates, 1 post", m)
	}
	if m.PassesPerLocate <= 0 {
		t.Fatalf("PassesPerLocate = %v; want > 0", m.PassesPerLocate)
	}
}

func TestClusterConcurrentLocates(t *testing.T) {
	c := newMemCluster(t, 64, Options{})
	for p := 0; p < 8; p++ {
		if _, err := c.Register(core.Port(fmt.Sprintf("svc-%d", p)), graph.NodeID(p*7)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	var failures atomic.Int64
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				port := core.Port(fmt.Sprintf("svc-%d", (w+i)%8))
				if _, err := c.Locate(graph.NodeID((w*31+i)%64), port); err != nil {
					failures.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	if n := failures.Load(); n != 0 {
		t.Fatalf("%d concurrent locates failed", n)
	}
	if m := c.Metrics(); m.Locates != 16*500 {
		t.Fatalf("metrics.Locates = %d; want %d", m.Locates, 16*500)
	}
}

// blockingTransport wraps a Transport and holds every Locate until
// released, to force flights to overlap.
type blockingTransport struct {
	Transport
	gate    chan struct{}
	inCalls atomic.Int64
}

func (b *blockingTransport) Locate(client graph.NodeID, port core.Port) (core.Entry, error) {
	b.inCalls.Add(1)
	<-b.gate
	return b.Transport.Locate(client, port)
}

func TestClusterCoalescing(t *testing.T) {
	tr, err := NewMemTransport(topology.Complete(16), rendezvous.Checkerboard(16), 0)
	if err != nil {
		t.Fatal(err)
	}
	bt := &blockingTransport{Transport: tr, gate: make(chan struct{})}
	c := New(bt, Options{})
	defer c.Close()
	if _, err := c.Register("svc", 3); err != nil {
		t.Fatal(err)
	}

	// Leader first: its flight is registered before it blocks inside the
	// transport, so every locate started while it is blocked coalesces.
	var wg sync.WaitGroup
	results := make([]error, 1+coalesceFollowers)
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, results[0] = c.Locate(2, "svc")
	}()
	for bt.inCalls.Load() == 0 {
		runtime.Gosched()
	}
	var started atomic.Int64
	for i := 1; i <= coalesceFollowers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			started.Add(1)
			_, results[i] = c.Locate(2, "svc")
		}(i)
	}
	for started.Load() < coalesceFollowers {
		runtime.Gosched()
	}
	time.Sleep(50 * time.Millisecond) // let followers reach the flight table
	close(bt.gate)
	wg.Wait()
	for i, err := range results {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
	m := c.Metrics()
	if m.Coalesced == 0 {
		t.Fatalf("no locates coalesced across %d concurrent callers for one key", 1+coalesceFollowers)
	}
}

const coalesceFollowers = 7

func TestClusterSubmit(t *testing.T) {
	c := newMemCluster(t, 32, Options{Shards: 4, WorkersPerShard: 2})
	if _, err := c.Register("svc", 9); err != nil {
		t.Fatal(err)
	}
	const jobs = 200
	var done sync.WaitGroup
	var bad atomic.Int64
	done.Add(jobs)
	for i := 0; i < jobs; i++ {
		err := c.Submit(graph.NodeID(i%32), "svc", func(e core.Entry, err error) {
			if err != nil || e.Addr != 9 {
				bad.Add(1)
			}
			done.Done()
		})
		if err != nil {
			// Shed under a tiny queue is allowed; complete the waiter.
			if !errors.Is(err, ErrOverload) {
				t.Fatal(err)
			}
			done.Done()
		}
	}
	done.Wait()
	if n := bad.Load(); n != 0 {
		t.Fatalf("%d async locates failed", n)
	}
}

func TestClusterOverloadSheds(t *testing.T) {
	tr, err := NewMemTransport(topology.Complete(16), rendezvous.Checkerboard(16), 0)
	if err != nil {
		t.Fatal(err)
	}
	bt := &blockingTransport{Transport: tr, gate: make(chan struct{})}
	c := New(bt, Options{Shards: 1, WorkersPerShard: 1, QueueDepth: 2, DisableCoalescing: true})
	defer c.Close()
	if _, err := c.Register("svc", 3); err != nil {
		t.Fatal(err)
	}
	// One task occupies the worker (blocked at the gate); fill the queue
	// and then some — the excess must shed, not block.
	shed := 0
	for i := 0; i < 10; i++ {
		if err := c.Submit(0, "svc", nil); errors.Is(err, ErrOverload) {
			shed++
		}
	}
	close(bt.gate)
	if shed == 0 {
		t.Fatal("no submissions shed past a full queue")
	}
	if m := c.Metrics(); m.Shed == 0 {
		t.Fatal("metrics did not count shed submissions")
	}
}

func TestClusterClose(t *testing.T) {
	tr, err := NewMemTransport(topology.Complete(16), rendezvous.Checkerboard(16), 0)
	if err != nil {
		t.Fatal(err)
	}
	c := New(tr, Options{})
	if _, err := c.Register("svc", 3); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if _, err := c.Locate(0, "svc"); !errors.Is(err, ErrClosed) {
		t.Fatalf("locate after close: %v; want ErrClosed", err)
	}
	if err := c.Submit(0, "svc", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: %v; want ErrClosed", err)
	}
	if _, err := c.Register("svc2", 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("register after close: %v; want ErrClosed", err)
	}
}

func TestClusterChurnCrashRestore(t *testing.T) {
	c := newMemCluster(t, 36, Options{})
	tr := c.Transport()
	srv, err := c.Register("svc", 7)
	if err != nil {
		t.Fatal(err)
	}
	// Crash a rendezvous node: locates that relied on it must still
	// succeed through the surviving rendezvous set or fail cleanly.
	if err := tr.Crash(7); err != nil {
		t.Fatal(err)
	}
	if err := tr.Restore(7); err != nil {
		t.Fatal(err)
	}
	// The crash dropped node 7's cache; a repost heals it.
	if err := srv.Repost(); err != nil {
		t.Fatal(err)
	}
	for client := graph.NodeID(0); client < 36; client += 5 {
		if e, err := c.Locate(client, "svc"); err != nil || e.Addr != 7 {
			t.Fatalf("post-heal locate from %d = %v, %v", client, e, err)
		}
	}
	// Full churn cycle: deregister, re-register elsewhere.
	if err := srv.Deregister(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Register("svc", 20); err != nil {
		t.Fatal(err)
	}
	for client := graph.NodeID(0); client < 36; client += 5 {
		if e, err := c.Locate(client, "svc"); err != nil || e.Addr != 20 {
			t.Fatalf("post-churn locate from %d = %v, %v; want 20", client, e, err)
		}
	}
}

func TestMemTransportCrashedOriginParity(t *testing.T) {
	memT, err := NewMemTransport(topology.Complete(16), rendezvous.Checkerboard(16), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := memT.Register("svc", 3); err != nil {
		t.Fatal(err)
	}
	if err := memT.Crash(5); err != nil {
		t.Fatal(err)
	}
	// A crashed client cannot query, as on the simulator.
	if _, err := memT.Locate(5, "svc"); !errors.Is(err, sim.ErrCrashed) {
		t.Fatalf("locate from crashed node: %v; want ErrCrashed", err)
	}
	if _, err := memT.LocateAll(5, "svc"); !errors.Is(err, sim.ErrCrashed) {
		t.Fatalf("locate-all from crashed node: %v; want ErrCrashed", err)
	}
	// A crashed origin cannot register.
	if _, err := memT.Register("svc2", 5); !errors.Is(err, sim.ErrCrashed) {
		t.Fatalf("register at crashed node: %v; want ErrCrashed", err)
	}
	// Migration away from a crashed host still succeeds: the fresh
	// posting wins even though the tombstone could not be sent.
	srv, err := memT.Register("mover", 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := memT.Crash(2); err != nil {
		t.Fatal(err)
	}
	if err := srv.Migrate(9); err != nil {
		t.Fatalf("migrate from crashed host: %v", err)
	}
	if e, err := memT.Locate(0, "mover"); err != nil || e.Addr != 9 {
		t.Fatalf("post-migrate locate = %v, %v; want addr 9", e, err)
	}
}

// TestClusterCloseDuringLocates closes the cluster while synchronous
// locates are in flight on the sim transport: in-flight calls must
// finish (or fail cleanly with ErrClosed), never panic into the closing
// network.
func TestClusterCloseDuringLocates(t *testing.T) {
	tr, err := NewSimTransport(topology.Complete(16), rendezvous.Checkerboard(16), fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	c := New(tr, Options{})
	if _, err := c.Register("svc", 5); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				if _, err := c.Locate(graph.NodeID((w+i)%16), "svc"); errors.Is(err, ErrClosed) {
					return
				} else if err != nil {
					t.Errorf("locate during close: %v", err)
					return
				}
			}
		}(w)
	}
	time.Sleep(10 * time.Millisecond)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}

func TestClusterSimTransport(t *testing.T) {
	tr, err := NewSimTransport(topology.Complete(16), rendezvous.Checkerboard(16), fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	c := New(tr, Options{})
	defer c.Close()
	if _, err := c.Register("svc", 5); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var failures atomic.Int64
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				e, err := c.Locate(graph.NodeID((w+i)%16), "svc")
				if err != nil || e.Addr != 5 {
					failures.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	if n := failures.Load(); n != 0 {
		t.Fatalf("%d locates failed over the sim transport", n)
	}
	if m := c.Metrics(); m.Passes == 0 {
		t.Fatal("sim transport charged no passes")
	}
}
