package cluster

import (
	"slices"
	"time"

	"matchmake/internal/core"
	"matchmake/internal/graph"
)

var _ AntiEntropyTransport = (*MemTransport)(nil)

// ReconcileRound implements AntiEntropyTransport: it snapshots the live
// registration table, predicts every node's posting row from the
// current (possibly dual-epoch) set tables, and repairs each node whose
// xor digest disagrees — orphans expire in place for free, missing or
// wrong entries are dropped and re-posted per server at the diff
// targets' multicast-tree cost. Taking resizeMu serializes the round
// against Resize/FinishResize, so the ground truth never shifts epochs
// mid-diff.
func (t *MemTransport) ReconcileRound() (int, error) {
	t.resizeMu.Lock()
	defer t.resizeMu.Unlock()

	type liveSrv struct {
		srv  *memServer
		node graph.NodeID
	}
	srvs := make(map[expectedPair]liveSrv)
	expected := make(map[graph.NodeID]expectedRow)
	for _, srv := range *t.byID.Load() {
		node, gone := srv.loadState()
		if gone {
			continue
		}
		srvs[expectedPair{port: srv.port, id: srv.id}] = liveSrv{srv: srv, node: node}
		targets, _ := t.postSets(srv, node)
		for _, v := range targets {
			if t.crashed[v].Load() {
				continue
			}
			row := expected[v]
			if row == nil {
				row = make(expectedRow)
				expected[v] = row
			}
			row.add(srv.port, srv.id, node)
		}
	}

	actual := make(map[graph.NodeID][]core.Entry)
	for _, ne := range t.store.DumpRange(0, t.g.N()) {
		actual[ne.Node] = append(actual[ne.Node], ne.E)
	}

	repaired := 0
	reposts := make(map[expectedPair][]graph.NodeID)
	ports := make(map[core.Port]struct{})
	checkNode := func(v graph.NodeID) {
		if t.crashed[v].Load() {
			return
		}
		exp := expected[v]
		var actDigest uint64
		for _, e := range actual[v] {
			if e.Active {
				actDigest ^= postingDigest(e.Port, e.ServerID, e.Addr)
			}
		}
		if actDigest == exp.digest() {
			return
		}
		drops, reps := rowDiff(exp, actual[v])
		for _, p := range drops {
			t.store.Drop(v, p.port, p.id)
			ports[p.port] = struct{}{}
			repaired++
		}
		for _, p := range reps {
			reposts[p] = append(reposts[p], v)
		}
	}
	for v := range actual {
		checkNode(v)
	}
	for v := range expected {
		if _, ok := actual[v]; !ok {
			checkNode(v)
		}
	}

	for p, vs := range reposts {
		ls, ok := srvs[p]
		if !ok || t.crashed[ls.node].Load() {
			// The honest origin is down; the posting heals after restore.
			continue
		}
		if err := t.postEntryVia(ls.srv, ls.node, vs); err != nil {
			continue
		}
		ports[p.port] = struct{}{}
		repaired += len(vs)
	}
	for port := range ports {
		t.gens.bump(port)
	}
	t.recon.rounds.Add(1)
	t.recon.repaired.Add(int64(repaired))
	return repaired, nil
}

// corruptRegs snapshots the registration ground truth the corruption
// plan builder draws from, ordered by instance id so equal seeds build
// identical plans on every transport.
func (t *MemTransport) corruptRegs() []corruptReg {
	byID := *t.byID.Load()
	regs := make([]corruptReg, 0, len(byID))
	for _, srv := range byID {
		node, gone := srv.loadState()
		if gone || t.crashed[node].Load() {
			continue
		}
		targets, _ := t.postSets(srv, node)
		regs = append(regs, corruptReg{port: srv.port, id: srv.id, node: node, targets: targets})
	}
	slices.SortFunc(regs, func(a, b corruptReg) int { return int(a.id) - int(b.id) })
	return regs
}

// Corrupt implements AntiEntropyTransport: it applies the deterministic
// adversarial plan straight to the backing store, bypassing the §2.1
// merge rule, and bumps every hint generation — corrupted rendezvous
// rows may have changed any port's freshest winner.
func (t *MemTransport) Corrupt(opts CorruptOptions) (int, error) {
	plan := buildCorruptPlan(opts, t.corruptRegs(), t.g.N())
	for _, op := range plan {
		if op.drop {
			t.store.Drop(op.node, op.port, op.id)
		} else {
			t.store.Inject(op.node, op.e)
		}
	}
	t.recon.injected.Add(int64(len(plan)))
	t.gens.bumpAll()
	return len(plan), nil
}

// StartReconcile implements AntiEntropyTransport.
func (t *MemTransport) StartReconcile(interval time.Duration) {
	t.recon.startLoop(interval, t.ReconcileRound)
}

// ReconcileStats implements AntiEntropyTransport.
func (t *MemTransport) ReconcileStats() ReconcileStats { return t.recon.stats() }
