package cluster

import (
	"errors"
	"testing"
	"time"

	"matchmake/internal/core"
	"matchmake/internal/graph"
	"matchmake/internal/rendezvous"
	"matchmake/internal/strategy"
	"matchmake/internal/topology"
)

// fastOpts keeps the simulator's collect window short so equivalence
// runs stay quick.
var fastOpts = core.Options{LocateTimeout: 2 * time.Second, CollectWindow: 2 * time.Millisecond}

// eqCase is one topology/strategy pair checked for transport agreement.
type eqCase struct {
	name  string
	g     *graph.Graph
	strat rendezvous.Strategy
}

func equivalenceCases(t *testing.T) []eqCase {
	t.Helper()
	gr, err := topology.NewGrid(6, 6)
	if err != nil {
		t.Fatal(err)
	}
	return []eqCase{
		{"complete-checkerboard", topology.Complete(36), rendezvous.Checkerboard(36)},
		{"grid-manhattan", gr.G, strategy.Manhattan(gr)},
	}
}

// TestTransportEquivalence drives the same scripted workload through the
// simulator transport and the in-process fast path and demands identical
// results and identical message-pass accounting: the fast path's
// routing-derived costs must match the simulator's hop counter exactly
// on a healthy network.
func TestTransportEquivalence(t *testing.T) {
	for _, tc := range equivalenceCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			simT, err := NewSimTransport(tc.g, tc.strat, fastOpts)
			if err != nil {
				t.Fatal(err)
			}
			defer simT.Close()
			memT, err := NewMemTransport(tc.g, tc.strat, 0)
			if err != nil {
				t.Fatal(err)
			}

			n := tc.g.N()
			script := []struct {
				port   core.Port
				server graph.NodeID
			}{
				{"alpha", graph.NodeID(n / 3)},
				{"beta", graph.NodeID(n - 1)},
				{"gamma", 0},
			}
			simRefs := make(map[core.Port]ServerRef)
			memRefs := make(map[core.Port]ServerRef)
			for _, sc := range script {
				r1, err := simT.Register(sc.port, sc.server)
				if err != nil {
					t.Fatal(err)
				}
				r2, err := memT.Register(sc.port, sc.server)
				if err != nil {
					t.Fatal(err)
				}
				simRefs[sc.port], memRefs[sc.port] = r1, r2
			}
			simT.Network().Drain()

			checkLocates := func(stage string) {
				t.Helper()
				for c := 0; c < n; c += 3 {
					client := graph.NodeID(c)
					for _, sc := range script {
						simBefore, memBefore := simT.Passes(), memT.Passes()
						e1, err1 := simT.Locate(client, sc.port)
						simT.Network().Drain()
						e2, err2 := memT.Locate(client, sc.port)
						if (err1 == nil) != (err2 == nil) {
							t.Fatalf("%s: locate %q from %d: sim err=%v mem err=%v",
								stage, sc.port, client, err1, err2)
						}
						if err1 == nil && (e1.Addr != e2.Addr || e1.ServerID != e2.ServerID) {
							t.Fatalf("%s: locate %q from %d: sim %+v != mem %+v",
								stage, sc.port, client, e1, e2)
						}
						simCost := simT.Passes() - simBefore
						memCost := memT.Passes() - memBefore
						if simCost != memCost {
							t.Fatalf("%s: locate %q from %d: sim charged %d passes, mem %d",
								stage, sc.port, client, simCost, memCost)
						}
					}
				}
			}

			checkLocates("steady")

			// Migration: tombstone at the old address, fresh post at the
			// new one; both transports must agree afterwards.
			to := graph.NodeID(n / 2)
			simBefore, memBefore := simT.Passes(), memT.Passes()
			if err := simRefs["alpha"].Migrate(to); err != nil {
				t.Fatal(err)
			}
			simT.Network().Drain()
			if err := memRefs["alpha"].Migrate(to); err != nil {
				t.Fatal(err)
			}
			if simCost, memCost := simT.Passes()-simBefore, memT.Passes()-memBefore; simCost != memCost {
				t.Fatalf("migrate: sim charged %d passes, mem %d", simCost, memCost)
			}
			checkLocates("post-migrate")

			// Deregistration: the port must stop resolving on both.
			if err := simRefs["beta"].Deregister(); err != nil {
				t.Fatal(err)
			}
			simT.Network().Drain()
			if err := memRefs["beta"].Deregister(); err != nil {
				t.Fatal(err)
			}
			if _, err := memT.Locate(1, "beta"); !errors.Is(err, core.ErrNotFound) {
				t.Fatalf("mem locate after deregister: %v; want ErrNotFound", err)
			}
		})
	}
}

// TestTransportEquivalenceProbe drives the hint-validation probe
// through both transports: a probe (hit or negative answer) must cost
// exactly 2×Dist(client, addr) on each, with identical outcomes.
func TestTransportEquivalenceProbe(t *testing.T) {
	for _, tc := range equivalenceCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			simT, err := NewSimTransport(tc.g, tc.strat, fastOpts)
			if err != nil {
				t.Fatal(err)
			}
			defer simT.Close()
			memT, err := NewMemTransport(tc.g, tc.strat, 0)
			if err != nil {
				t.Fatal(err)
			}
			n := tc.g.N()
			server := graph.NodeID(n / 3)
			simRef, err := simT.Register("alpha", server)
			if err != nil {
				t.Fatal(err)
			}
			memRef, err := memT.Register("alpha", server)
			if err != nil {
				t.Fatal(err)
			}
			simT.Network().Drain()

			client := graph.NodeID(1)
			simE, err := simT.Locate(client, "alpha")
			if err != nil {
				t.Fatal(err)
			}
			simT.Network().Drain()
			memE, err := memT.Locate(client, "alpha")
			if err != nil {
				t.Fatal(err)
			}

			routing, err := graph.NewRouting(tc.g)
			if err != nil {
				t.Fatal(err)
			}
			for c := 0; c < n; c += 4 {
				prober := graph.NodeID(c)
				simBefore, memBefore := simT.Passes(), memT.Passes()
				se, serr := simT.Probe(prober, simE)
				me, merr := memT.Probe(prober, memE)
				if serr != nil || merr != nil {
					t.Fatalf("probe from %d: sim err=%v mem err=%v", c, serr, merr)
				}
				if se.Addr != me.Addr || se.ServerID != me.ServerID {
					t.Fatalf("probe from %d: sim %+v != mem %+v", c, se, me)
				}
				want := int64(2 * routing.Dist(prober, server))
				if simCost := simT.Passes() - simBefore; simCost != want {
					t.Fatalf("probe from %d: sim charged %d, want %d", c, simCost, want)
				}
				if memCost := memT.Passes() - memBefore; memCost != want {
					t.Fatalf("probe from %d: mem charged %d, want %d", c, memCost, want)
				}
			}

			// After a migration a probe at the old address gets a
			// negative answer on both transports, at the same cost.
			to := graph.NodeID(n - 1)
			if err := simRef.Migrate(to); err != nil {
				t.Fatal(err)
			}
			simT.Network().Drain()
			if err := memRef.Migrate(to); err != nil {
				t.Fatal(err)
			}
			simBefore, memBefore := simT.Passes(), memT.Passes()
			_, serr := simT.Probe(client, simE)
			_, merr := memT.Probe(client, memE)
			if !errors.Is(serr, core.ErrNotFound) || !errors.Is(merr, core.ErrNotFound) {
				t.Fatalf("stale probe: sim err=%v mem err=%v; want ErrNotFound", serr, merr)
			}
			want := int64(2 * routing.Dist(client, server))
			if simCost, memCost := simT.Passes()-simBefore, memT.Passes()-memBefore; simCost != want || memCost != want {
				t.Fatalf("stale probe: sim charged %d, mem %d, want %d", simCost, memCost, want)
			}
		})
	}
}

// TestTransportEquivalenceBatch pushes the same batch through both
// transports: identical per-request answers and identical total pass
// charges.
func TestTransportEquivalenceBatch(t *testing.T) {
	for _, tc := range equivalenceCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			simT, err := NewSimTransport(tc.g, tc.strat, fastOpts)
			if err != nil {
				t.Fatal(err)
			}
			defer simT.Close()
			memT, err := NewMemTransport(tc.g, tc.strat, 0)
			if err != nil {
				t.Fatal(err)
			}
			n := tc.g.N()
			regs := []Registration{
				{Port: "alpha", Node: graph.NodeID(n / 3)},
				{Port: "beta", Node: graph.NodeID(n - 1)},
			}
			simT.ResetPasses()
			memT.ResetPasses()
			if _, err := simT.PostBatch(regs); err != nil {
				t.Fatal(err)
			}
			simT.Network().Drain()
			if _, err := memT.PostBatch(regs); err != nil {
				t.Fatal(err)
			}
			if simT.Passes() != memT.Passes() {
				t.Fatalf("PostBatch: sim charged %d passes, mem %d", simT.Passes(), memT.Passes())
			}

			var reqs []LocateReq
			for c := 0; c < n; c += 5 {
				reqs = append(reqs,
					LocateReq{Client: graph.NodeID(c), Port: "alpha"},
					LocateReq{Client: graph.NodeID(c), Port: "beta"},
					LocateReq{Client: graph.NodeID(c), Port: "nope"})
			}
			simRes := make([]LocateRes, len(reqs))
			memRes := make([]LocateRes, len(reqs))
			simT.ResetPasses()
			memT.ResetPasses()
			simT.LocateBatch(reqs, simRes)
			simT.Network().Drain()
			memT.LocateBatch(reqs, memRes)
			if simT.Passes() != memT.Passes() {
				t.Fatalf("LocateBatch: sim charged %d passes, mem %d", simT.Passes(), memT.Passes())
			}
			for i := range reqs {
				if (simRes[i].Err == nil) != (memRes[i].Err == nil) {
					t.Fatalf("req %d (%+v): sim err=%v mem err=%v", i, reqs[i], simRes[i].Err, memRes[i].Err)
				}
				if simRes[i].Err == nil &&
					(simRes[i].Entry.Addr != memRes[i].Entry.Addr ||
						simRes[i].Entry.ServerID != memRes[i].Entry.ServerID) {
					t.Fatalf("req %d (%+v): sim %+v != mem %+v", i, reqs[i], simRes[i].Entry, memRes[i].Entry)
				}
			}
		})
	}
}

// TestTransportEquivalenceRegisterCost checks the posting flood cost in
// isolation: the fast path's precomputed multicast-tree edge count must
// equal the hops the simulator pays for the same registration.
func TestTransportEquivalenceRegisterCost(t *testing.T) {
	for _, tc := range equivalenceCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			simT, err := NewSimTransport(tc.g, tc.strat, fastOpts)
			if err != nil {
				t.Fatal(err)
			}
			defer simT.Close()
			memT, err := NewMemTransport(tc.g, tc.strat, 0)
			if err != nil {
				t.Fatal(err)
			}
			for v := 0; v < tc.g.N(); v += 5 {
				simT.ResetPasses()
				memT.ResetPasses()
				if _, err := simT.Register("cost", graph.NodeID(v)); err != nil {
					t.Fatal(err)
				}
				simT.Network().Drain()
				if _, err := memT.Register("cost", graph.NodeID(v)); err != nil {
					t.Fatal(err)
				}
				if simT.Passes() != memT.Passes() {
					t.Fatalf("register at %d: sim %d passes, mem %d",
						v, simT.Passes(), memT.Passes())
				}
			}
		})
	}
}
