package cluster

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"matchmake/internal/core"
	"matchmake/internal/graph"
	"matchmake/internal/netwire"
	"matchmake/internal/rendezvous"
	"matchmake/internal/sim"
	"matchmake/internal/stats"
	"matchmake/internal/strategy"
)

// NetTransport is the socket backend: the cluster's graph nodes are
// partitioned into contiguous ranges, each range hosted by its own OS
// process (a NodeServer, usually cmd/mmnode) reached over TCP with the
// internal/netwire protocol. Postings, queries, probes and liveness
// records live in the node processes; the transport fans every
// operation out to the owning processes over pooled, pipelined
// connections and keeps the paper's cost accounting locally — exactly
// the routing-derived charges MemTransport computes, so the two
// backends give identical answers and identical pass counts on a
// healthy cluster (pinned, operation by operation, by the net
// equivalence tests).
//
// Partial failure is fail-silent, matching the crash model of the
// in-memory path: a node process that dies (kill -9, crash, network
// loss) makes its whole node range behave like crashed nodes — its
// postings drop, its rendezvous caches stop answering (silent misses,
// §1.5), and probes into it fail without an answer. The first observed
// process death bumps every hint generation, so cached addresses
// re-resolve by flooding instead of probing a black hole; a restarted
// process is redialed transparently on the next operation.
//
// Logical posting timestamps and server ids are allocated by this
// transport, which therefore acts as the cluster's single write
// coordinator: run many reading NetTransports if you like, but all
// registrations, migrations and crash events must flow through one
// instance for the freshest-entry tie-break to stay globally ordered.
type NetTransport struct {
	g       *graph.Graph
	routing *graph.Routing
	strat   rendezvous.Strategy

	// hot holds the precomputed P/Q set/cost tables, the weighted-mode
	// strategy (nil when disabled) and the published hot-port
	// classification — the same shared set-selection logic MemTransport
	// uses (see setcosts.go), which is what keeps the two backends'
	// charges in lockstep.
	hot hotTables

	// procs is the current process partition: pools, ownership and
	// health state bundled behind one pointer so Rescale can swap the
	// whole node-process set atomically while operations in flight keep
	// using a consistent snapshot. rescaleMu serializes Rescale calls;
	// opts keeps the dial/timeout knobs rescales re-dial with.
	//
	// lifeMu fences lifecycle WRITES (register, post, tombstone,
	// migrate, deregister, repair, resize migration) against Rescale:
	// writers hold it shared, Rescale holds it exclusively across the
	// partition transfer and the swap, so no write can land on an old
	// process after its partition was snapshotted and silently vanish
	// from the new set (a lost tombstone would resurrect a deregistered
	// server). Read traffic — locates, probes — takes no fence: a read
	// racing the swap at worst misses transiently, which the replica
	// fallthrough and hint re-resolution already absorb.
	procs     atomic.Pointer[procSet]
	rescaleMu sync.Mutex
	lifeMu    sync.RWMutex
	opts      NetOptions

	// rp is the replicated strategy when the transport runs r-fold
	// replicated rendezvous with r > 1 (nil otherwise). The replica
	// query tables live in hot.sets like every other precomputed set;
	// rp itself supplies the family-scoping predicate (InPost) the
	// coordinator filters replies through. Replicated floods travel as
	// opQueryAll so the coordinator sees every candidate entry per
	// node; the node processes stay family-agnostic.
	rp *strategy.Replicated

	// Repair loop state (see runRepair): started when
	// NetOptions.RepairInterval is set, stopped by Close.
	stopRepair chan struct{}
	repairWG   sync.WaitGroup

	// recon holds the anti-entropy counters and the background
	// reconciliation loop (see antientropy.go / antientropy_net.go),
	// started when NetOptions.ReconcileInterval is set.
	recon reconciler

	// forge is the coordinator's mirror of the Byzantine lie plan last
	// shipped to the node processes via opArm (see byzantine_net.go) —
	// kept only for ArmedNodes; the lies themselves are told by the
	// armed processes.
	forge atomic.Pointer[forgeTable]

	// elastic is the epoch-versioned membership state (nil unless built
	// by NewElasticNetTransport), mirroring MemTransport's: the
	// coordinator owns the tables, the node processes just store what
	// they are sent, and epoch garbage collection travels as opExpire.
	elastic     atomic.Pointer[epochTables]
	resizeMu    sync.Mutex
	migrated    atomic.Int64
	dualLocates atomic.Int64

	// regMu guards the client-side registration mirror (byPort), used
	// by SetHotPorts to repost newly hot ports; the authoritative live
	// table probes consult is on the node processes.
	regMu  sync.Mutex
	byPort map[core.Port]map[uint64]*netServer

	gens     *genIndex
	crashed  []atomic.Bool // client-side crash mirror, same charges as mem
	clock    atomic.Uint64 // logical posting timestamps
	serverID atomic.Uint64
	passes   stats.StripedCounter
	events   eventSink

	// wire tallies frames/bytes across every pool the transport ever
	// dials (including post-Rescale sets, which share it), so WireStats
	// deltas stay monotonic across repartitions. coal is the locate
	// coalescer (nil when NetOptions.DisableCoalescing is set).
	wire netwire.Counters
	coal *netCoalescer

	scratch sync.Pool // *netScratch
}

var _ Transport = (*NetTransport)(nil)
var _ HotReclassifier = (*NetTransport)(nil)
var _ ReplicatedTransport = (*NetTransport)(nil)
var _ ElasticTransport = (*NetTransport)(nil)

// procSet is one immutable node-process partition of a NetTransport:
// the dialed connection pools, the node→process ownership derived from
// the hello handshake, and the per-process health marks. Rescale swaps
// the whole set atomically; operations capture one snapshot and use it
// throughout, so a concurrent repartition can at worst make their
// calls fail fast against closed pools — the fail-silent crash
// semantics they already handle.
type procSet struct {
	addrs      []string
	pools      []*netwire.Pool
	ownerOf    []int         // node -> owning process index
	ranges     [][2]int      // process index -> owned [lo, hi)
	downP      []atomic.Bool // observed-dead processes (sticky until a call succeeds)
	needRepair []atomic.Bool // process observed dead since its last repair
}

// dialProcSet dials pools for addrs and verifies via the hello
// handshake that the processes cover the n nodes in contiguous ranges.
// Wire traffic is tallied into ctr when non-nil (the transport's
// long-lived counters, shared across rescales). On any failure every
// pool is closed.
func dialProcSet(addrs []string, n int, opts NetOptions, ctr *netwire.Counters) (*procSet, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("cluster: net transport needs at least one node-process address")
	}
	ps := &procSet{
		addrs:      addrs,
		pools:      make([]*netwire.Pool, len(addrs)),
		ownerOf:    make([]int, n),
		ranges:     make([][2]int, len(addrs)),
		downP:      make([]atomic.Bool, len(addrs)),
		needRepair: make([]atomic.Bool, len(addrs)),
	}
	for i, addr := range addrs {
		p := netwire.NewPool(addr, opts.ConnsPerProc)
		if ctr != nil {
			p.UseCounters(ctr)
		}
		if opts.DialTimeout > 0 {
			p.DialTimeout = opts.DialTimeout
		}
		p.CallTimeout = opts.CallTimeout
		ps.pools[i] = p
	}
	if err := ps.handshake(n); err != nil {
		ps.close()
		return nil, err
	}
	return ps, nil
}

// close releases every pool of the set.
func (ps *procSet) close() {
	for _, p := range ps.pools {
		if p != nil {
			p.Close()
		}
	}
}

// handshake hellos every node process and builds the node→process
// ownership table, demanding contiguous ranges that cover [0, n).
func (ps *procSet) handshake(n int) error {
	next := 0
	for i := range ps.pools {
		st, body, err := ps.pools[i].Call(opHello, nil, nil)
		if err != nil {
			return fmt.Errorf("cluster: hello %s: %w", ps.addrs[i], err)
		}
		if st != stOK {
			return fmt.Errorf("cluster: hello %s: status %d", ps.addrs[i], st)
		}
		d := netwire.NewDec(body)
		pn, lo, hi := int(d.Uvarint()), int(d.Uvarint()), int(d.Uvarint())
		if d.Err() != nil {
			return fmt.Errorf("cluster: hello %s: %w", ps.addrs[i], d.Err())
		}
		if pn != n {
			return fmt.Errorf("cluster: process %s built for n=%d, transport for n=%d", ps.addrs[i], pn, n)
		}
		if lo != next || hi <= lo || hi > n {
			return fmt.Errorf("cluster: process %s owns [%d,%d), want contiguous from %d", ps.addrs[i], lo, hi, next)
		}
		for v := lo; v < hi; v++ {
			ps.ownerOf[v] = i
		}
		ps.ranges[i] = [2]int{lo, hi}
		next = hi
	}
	if next != n {
		return fmt.Errorf("cluster: processes cover [0,%d) of %d nodes", next, n)
	}
	return nil
}

// NetOptions tune a NetTransport.
type NetOptions struct {
	// ConnsPerProc is the number of connection stripes per node
	// process (default max(2, GOMAXPROCS), netwire.NewPool's default).
	// Each stripe pipelines any number of in-flight requests; striping
	// keeps hot shards from serializing behind one connection's write
	// lock.
	ConnsPerProc int
	// CallTimeout bounds each request round trip; 0 means wait until
	// the connection delivers or breaks. A kill -9'd peer breaks its
	// connections immediately, so the default is fine on loopback; set
	// a timeout when the network itself can black-hole traffic.
	CallTimeout time.Duration
	// DialTimeout bounds connection establishment (default 2s).
	DialTimeout time.Duration
	// RepairInterval enables the background re-post repair loop: every
	// interval the transport hellos each node process, and when a
	// process observed dead answers again (it was restarted with its
	// volatile stores lost), every live registration is re-posted and
	// re-registered so the replication factor — and probe liveness — of
	// the recovered node range is restored. Repair traffic is charged
	// like any other posting (the paper's §5 "services regularly poll
	// their rendezvous nodes" maintenance), so leave it zero (disabled)
	// when pinning pass-accounting equivalence against another
	// transport.
	RepairInterval time.Duration
	// ReconcileInterval enables the background anti-entropy loop: every
	// interval the transport runs one ReconcileRound — digest exchange
	// with every node process, diff repair where a row disagrees with
	// the registration ground truth. Digest traffic is free (§5
	// maintenance metadata, like opExpire); only actual repair re-posts
	// are charged, at their real multicast cost. Leave it zero
	// (disabled) when pinning pass-accounting equivalence against
	// another transport.
	ReconcileInterval time.Duration
	// CoalesceWindow is the longest a coalescer leader waits for more
	// concurrent locates to join its wire flood before flushing. The
	// wait is adaptive: it is only taken when the previous flush just
	// handed leadership over (i.e. the path is demonstrably under
	// concurrent load), so with the window at 0 (the default — natural
	// batching only) or under low concurrency a locate floods with zero
	// added latency.
	CoalesceWindow time.Duration
	// CoalesceBatch caps how many concurrent locates coalesce into one
	// flood (default 64): a bound on per-frame size and decode latency,
	// not on throughput — overflow simply starts the next flood.
	CoalesceBatch int
	// DisableCoalescing turns the locate coalescer off entirely: every
	// LocateReplica runs its own wire flood, as before netwire v2. The
	// coalescer never changes answers or pass charges (pinned by
	// TestNetCoalescedEquivalence), so this is a debugging escape
	// hatch, not a correctness knob.
	DisableCoalescing bool
}

// netScratch is the pooled per-operation workspace: request/response
// buffers and node groupings per process, so the steady-state fan-out
// path reuses everything it touches.
type netScratch struct {
	nodes [][]graph.NodeID   // per-proc flat node list across sub-requests
	cnts  [][]int            // per-proc node count per sub-request
	idx   [][]int            // per-proc original request index per sub-request
	reqs  [][]byte           // per-proc request bodies
	resps [][]byte           // per-proc response bodies
	calls []*netwire.Pending // per-proc in-flight handles (fanout)
	errs  []error            // per-proc call errors
	found []bool             // per-request found flags (LocateBatch)
}

// reset readies the scratch for a fan-out over procs processes.
func (sc *netScratch) reset(procs int) {
	for len(sc.nodes) < procs {
		sc.nodes = append(sc.nodes, nil)
		sc.cnts = append(sc.cnts, nil)
		sc.idx = append(sc.idx, nil)
		sc.reqs = append(sc.reqs, nil)
		sc.resps = append(sc.resps, nil)
		sc.calls = append(sc.calls, nil)
		sc.errs = append(sc.errs, nil)
	}
	for p := 0; p < procs; p++ {
		sc.nodes[p] = sc.nodes[p][:0]
		sc.cnts[p] = sc.cnts[p][:0]
		sc.idx[p] = sc.idx[p][:0]
		sc.reqs[p] = sc.reqs[p][:0]
		sc.calls[p] = nil
		sc.errs[p] = nil
	}
}

// NewNetTransport connects to a running node-process cluster at addrs
// (one address per process, in partition order) and verifies via the
// hello handshake that the processes cover the n nodes of g in
// contiguous ranges. The strategy's universe must match the graph.
func NewNetTransport(g *graph.Graph, strat rendezvous.Strategy, addrs []string, opts NetOptions) (*NetTransport, error) {
	return newNetTransport(g, strat, nil, nil, addrs, opts)
}

// NewReplicatedNetTransport is NewNetTransport in r-fold replicated
// rendezvous mode: servers post to the union of every replica family's
// posting sets, and a locate that gets no rendezvous answer — because
// the meeting nodes are marked crashed, or because the node process
// hosting them was killed — falls through to the next family instead of
// failing, at one extra flood charge per attempt. Combined with
// NetOptions.RepairInterval this is the crash-tolerance story of the
// socket cluster: fallthrough bridges the outage, repair restores the
// replication factor once the process comes back.
func NewReplicatedNetTransport(g *graph.Graph, rp *strategy.Replicated, addrs []string, opts NetOptions) (*NetTransport, error) {
	if rp == nil {
		return nil, fmt.Errorf("cluster: replicated transport needs a strategy.Replicated")
	}
	return newNetTransport(g, rp.Base(), nil, rp, addrs, opts)
}

// NewWeightedNetTransport is NewNetTransport in frequency-weighted
// mode: cold ports run w.Base() and ports promoted by SetHotPorts run
// the post-heavy hot split, with the same union-post promotion protocol
// (and the same pass charges) as the weighted MemTransport.
func NewWeightedNetTransport(g *graph.Graph, w *strategy.Weighted, addrs []string, opts NetOptions) (*NetTransport, error) {
	if w == nil {
		return nil, fmt.Errorf("cluster: weighted transport needs a strategy.Weighted")
	}
	return newNetTransport(g, w.Base(), w, nil, addrs, opts)
}

func newNetTransport(g *graph.Graph, strat rendezvous.Strategy, w *strategy.Weighted, rp *strategy.Replicated, addrs []string, opts NetOptions) (*NetTransport, error) {
	n := g.N()
	if strat.N() != n {
		return nil, fmt.Errorf("cluster: strategy universe %d != graph size %d", strat.N(), n)
	}
	routing, err := graph.NewRouting(g)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	strat = rendezvous.Precompute(strat)
	sets, err := newStratSets(g, routing, strat, w, rp)
	if err != nil {
		return nil, err
	}
	t := &NetTransport{
		g:          g,
		routing:    routing,
		strat:      strat,
		hot:        hotTables{sets: sets, weighted: w},
		opts:       opts,
		stopRepair: make(chan struct{}),
		byPort:     make(map[core.Port]map[uint64]*netServer),
		gens:       newGenIndex(),
		crashed:    make([]atomic.Bool, n),
	}
	if rp != nil && rp.Replicas() > 1 {
		t.rp = rp
	}
	t.scratch.New = func() any { return &netScratch{} }
	if !opts.DisableCoalescing {
		t.coal = newNetCoalescer(t, opts.CoalesceWindow, opts.CoalesceBatch)
	}
	ps, err := dialProcSet(addrs, n, opts, &t.wire)
	if err != nil {
		return nil, err
	}
	t.procs.Store(ps)
	if opts.RepairInterval > 0 {
		t.repairWG.Add(1)
		go t.runRepair(opts.RepairInterval)
	}
	if opts.ReconcileInterval > 0 {
		t.StartReconcile(opts.ReconcileInterval)
	}
	return t, nil
}

// NewElasticNetTransport connects to a node-process cluster in
// epoch-versioned elastic membership mode: the serving epoch's tables
// live on this coordinator (mirroring the elastic MemTransport — the
// node processes just store what they are sent), Resize/FinishResize
// run the dual-epoch migration over the wire with epoch garbage
// collection travelling as opExpire, and Rescale additionally
// repartitions the node space across a different process set with a
// coordinator-driven partition transfer. Elastic membership is
// mutually exclusive with the weighted mode; replication comes from
// the epoch itself.
func NewElasticNetTransport(g *graph.Graph, initial *strategy.Epoch, addrs []string, opts NetOptions) (*NetTransport, error) {
	if initial == nil {
		return nil, fmt.Errorf("cluster: elastic transport needs an initial epoch")
	}
	n := g.N()
	routing, err := graph.NewRouting(g)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	et, err := newEpochTables(g, routing, initial, nil)
	if err != nil {
		return nil, err
	}
	t := &NetTransport{
		g:          g,
		routing:    routing,
		strat:      rendezvous.Precompute(epochStrategyView(initial, n)),
		opts:       opts,
		stopRepair: make(chan struct{}),
		byPort:     make(map[core.Port]map[uint64]*netServer),
		gens:       newGenIndex(),
		crashed:    make([]atomic.Bool, n),
	}
	t.scratch.New = func() any { return &netScratch{} }
	if !opts.DisableCoalescing {
		t.coal = newNetCoalescer(t, opts.CoalesceWindow, opts.CoalesceBatch)
	}
	t.elastic.Store(et)
	ps, err := dialProcSet(addrs, n, opts, &t.wire)
	if err != nil {
		return nil, err
	}
	t.procs.Store(ps)
	if opts.RepairInterval > 0 {
		t.repairWG.Add(1)
		go t.runRepair(opts.RepairInterval)
	}
	if opts.ReconcileInterval > 0 {
		t.StartReconcile(opts.ReconcileInterval)
	}
	return t, nil
}

// callProc issues one request to process p of snapshot ps and tracks
// its health: the first failure after a healthy period bumps every hint
// generation (the dead process may have hosted servers of any port) and
// marks the process for repair, and a later success clears the down
// mark so a restarted process heals transparently.
func (t *NetTransport) callProc(ps *procSet, p int, op byte, req, resp []byte) (byte, []byte, error) {
	st, body, err := ps.pools[p].Call(op, req, resp)
	if err != nil {
		t.noteProcDown(ps, p)
		return 0, nil, err
	}
	ps.downP[p].Store(false)
	return st, body, err
}

// noteProcDown records a failed call against process p: the first
// failure after a healthy period bumps every hint generation (the dead
// process may have hosted servers of any port) and marks the process
// for repair.
func (t *NetTransport) noteProcDown(ps *procSet, p int) {
	if !ps.downP[p].Swap(true) {
		t.gens.bumpAll()
		ps.needRepair[p].Store(true)
		t.events.emit(Event{Type: EvProcDown, Lo: ps.ranges[p][0], Hi: ps.ranges[p][1]})
	}
}

// runRepair is the background re-post repair loop: every interval it
// hellos each node process (detecting deaths that no foreground traffic
// has tripped over yet), and when a process that was observed dead
// answers again — a restart, with the volatile stores and live table of
// its node range lost — it re-registers every live server homed in the
// recovered range and re-posts every live server whose posting set
// touches it, restoring the replication factor the crash ate. Reposts
// go through the ordinary posting path and are charged like any other
// posting.
func (t *NetTransport) runRepair(interval time.Duration) {
	defer t.repairWG.Done()
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-t.stopRepair:
			return
		case <-tick.C:
		}
		// Reload the snapshot each tick so a Rescale's fresh process set
		// is picked up on the next round.
		ps := t.procs.Load()
		for p := range ps.pools {
			// The hello both probes health and, via callProc, flips the
			// down/needRepair marks on a state change.
			_, _, err := t.callProc(ps, p, opHello, nil, nil)
			if err == nil && ps.needRepair[p].Swap(false) {
				// Fence the repair's re-posts like any lifecycle write
				// so they cannot vanish into a mid-rescale snapshot.
				t.lifeMu.RLock()
				t.repairRange(ps, ps.ranges[p][0], ps.ranges[p][1])
				t.lifeMu.RUnlock()
				t.events.emit(Event{Type: EvProcUp, Lo: ps.ranges[p][0], Hi: ps.ranges[p][1]})
			}
		}
	}
}

// repairRange rebuilds the lost state of node range [lo, hi) from the
// client-side registration mirror: liveness records for servers homed
// in the range, then a fresh posting multicast for every live server
// whose posting set reaches into it. It serves both a restarted
// process (the repair loop) and a rescale whose donor died mid-transfer.
// Every hint generation is bumped afterwards so cached addresses
// re-resolve against the repaired stores. Each server's mutex is held
// across its liveness check AND its re-post: a repair posting carries a
// fresh timestamp, so letting it race a concurrent Deregister or
// Migrate could stamp an Active entry fresher than the lifecycle
// operation's tombstone and resurrect a gone (or moved-away) server at
// every rendezvous node.
func (t *NetTransport) repairRange(ps *procSet, lo, hi int) {
	t.regMu.Lock()
	var servers []*netServer
	for _, m := range t.byPort {
		for _, srv := range m {
			servers = append(servers, srv)
		}
	}
	t.regMu.Unlock()
	for _, srv := range servers {
		srv.mu.Lock()
		if srv.gone {
			srv.mu.Unlock()
			continue
		}
		node := srv.node
		if int(node) >= lo && int(node) < hi && !t.crashed[node].Load() {
			_ = t.registerRemote(ps, srv.id, srv.port, node)
		}
		// One set-table read serves both the in-range check and the
		// re-post: re-resolving the posting set inside postEntry could
		// observe a newer epoch than the one checked here if a Resize
		// (also under the shared lifeMu fence) installs its tables
		// between the two loads, re-posting a mid-migration server to
		// the wrong epoch's rendezvous nodes at the wrong charge.
		targets, cost := t.postSets(srv, node)
		for _, v := range targets {
			if int(v) >= lo && int(v) < hi {
				_ = t.postEntryTargets(srv, node, true, targets, cost)
				break
			}
		}
		srv.mu.Unlock()
	}
	t.gens.bumpAll()
}

// Name implements Transport.
func (t *NetTransport) Name() string {
	if t.elastic.Load() != nil {
		return "net-elastic"
	}
	if t.hot.weighted != nil {
		return "net-weighted"
	}
	if r := t.hot.replicas(); r > 1 {
		return fmt.Sprintf("net-r%d", r)
	}
	return "net"
}

// Replicas implements ReplicatedTransport: the replication factor of
// the strategy in use (1 when unreplicated); on an elastic transport
// mid-migration it is the dual-epoch family count.
func (t *NetTransport) Replicas() int {
	if et := t.elastic.Load(); et != nil {
		return et.replicas()
	}
	return t.hot.replicas()
}

// N implements Transport.
func (t *NetTransport) N() int { return t.g.N() }

// Procs returns the number of node processes behind the transport.
func (t *NetTransport) Procs() int { return len(t.procs.Load().pools) }

// Addrs returns the current node-process addresses in partition order.
func (t *NetTransport) Addrs() []string {
	ps := t.procs.Load()
	out := make([]string, len(ps.addrs))
	copy(out, ps.addrs)
	return out
}

// Strategy returns the (precomputed) base strategy in use.
func (t *NetTransport) Strategy() rendezvous.Strategy { return t.strat }

// Gen implements Transport: the generation index is maintained by the
// coordinating transport (bumped on register, migrate, deregister,
// crash, and on an observed process death), not on the wire.
func (t *NetTransport) Gen(port core.Port) uint64 { return t.gens.gen(port) }

func (t *NetTransport) genSlot(port core.Port) *atomic.Uint64 { return t.gens.slot(port) }

// isHot reports whether port currently runs the hot split.
func (t *NetTransport) isHot(port core.Port) bool { return t.hot.isHot(port) }

// canReclassify reports whether SetHotPorts can succeed.
func (t *NetTransport) canReclassify() bool { return t.hot.weighted != nil }

// HotPorts returns the currently published hot classification.
func (t *NetTransport) HotPorts() []core.Port { return t.hot.hotPorts() }

// querySets returns the query flood targets and multicast cost for a
// locate of port from client under the current classification (the
// serving epoch's family 0 on elastic transports, whose static tables
// do not exist).
func (t *NetTransport) querySets(client graph.NodeID, port core.Port) ([]graph.NodeID, int64) {
	if et := t.elastic.Load(); et != nil {
		targets, cost, _, _, _ := et.queryFor(client, 0)
		return targets, cost
	}
	return t.hot.querySets(client, port)
}

// postSets returns the posting targets and multicast cost for srv
// posting from node: the elastic epoch tables (widened to both epochs'
// union during a migration) when elastic membership is on, else the
// static tables with the shared sticky posted-under-union rule (see
// hotTables.postSets) — identical selection, identical charges, to
// MemTransport.
func (t *NetTransport) postSets(srv *netServer, node graph.NodeID) ([]graph.NodeID, int64) {
	if et := t.elastic.Load(); et != nil {
		return et.postFor(node)
	}
	return t.hot.postSets(&srv.postedHot, srv.port, node)
}

// netServer is a ServerRef on the socket transport. The client-side
// fields mirror the liveness record held by the owning node process;
// probes are answered remotely, lifecycle operations update both.
type netServer struct {
	t    *NetTransport
	port core.Port
	id   uint64

	postedHot atomic.Bool

	mu   sync.Mutex
	node graph.NodeID
	gone bool
}

// Register implements Transport: the liveness record lands on the
// process owning node, the postings on the processes owning the
// posting set, and the posting multicast cost is charged locally —
// identical passes to MemTransport.Register.
func (t *NetTransport) Register(port core.Port, node graph.NodeID) (ServerRef, error) {
	if !t.g.Valid(node) {
		return nil, fmt.Errorf("cluster: register at %d: %w", node, graph.ErrNodeRange)
	}
	if et := t.elastic.Load(); et != nil && !et.ep.Contains(node) {
		return nil, errOutsideMembership(port, node, et.ep)
	}
	t.lifeMu.RLock()
	defer t.lifeMu.RUnlock()
	ps := t.procs.Load()
	srv := &netServer{t: t, port: port, id: t.serverID.Add(1), node: node}
	t.addRegistration(srv)
	// Re-check membership now that the registration is published (see
	// MemTransport.Register): either this server made a racing shrink
	// Resize's regMu-guarded snapshot — and was validated there — or
	// the epoch loaded here is the post-resize one.
	if et := t.elastic.Load(); et != nil && !et.ep.Contains(node) {
		t.dropRegistration(srv)
		return nil, errOutsideMembership(port, node, et.ep)
	}
	if err := t.registerRemote(ps, srv.id, port, node); err != nil {
		t.dropRegistration(srv)
		return nil, err
	}
	if err := t.postEntry(srv, node, true); err != nil {
		t.dropRegistration(srv)
		_ = t.deregisterRemote(ps, srv.id, node)
		return nil, err
	}
	t.gens.bump(port)
	return srv, nil
}

// registerRemote records the liveness entry on node's owner process.
func (t *NetTransport) registerRemote(ps *procSet, id uint64, port core.Port, node graph.NodeID) error {
	buf := netwire.GetBuf()
	defer netwire.PutBuf(buf)
	req := netwire.AppendUvarint(*buf, id)
	req = netwire.AppendString(req, string(port))
	req = netwire.AppendUvarint(req, uint64(node))
	*buf = req
	st, _, err := t.callProc(ps, ps.ownerOf[node], opRegister, req, nil)
	if err != nil {
		return fmt.Errorf("cluster: register %q at %d: node process unreachable: %w", port, node, err)
	}
	if st == stCrashed {
		return fmt.Errorf("cluster: post %q from %d: %w", port, node, sim.ErrCrashed)
	}
	if st != stOK {
		return fmt.Errorf("cluster: register %q at %d: status %d", port, node, st)
	}
	return nil
}

// deregisterRemote removes the liveness entry from node's owner.
func (t *NetTransport) deregisterRemote(ps *procSet, id uint64, node graph.NodeID) error {
	buf := netwire.GetBuf()
	defer netwire.PutBuf(buf)
	req := netwire.AppendUvarint(*buf, id)
	*buf = req
	_, _, err := t.callProc(ps, ps.ownerOf[node], opDeregister, req, nil)
	return err
}

// addRegistration publishes srv in the client-side mirror; under regMu
// the hot-class decision is linearized against SetHotPorts exactly as
// on MemTransport.
func (t *NetTransport) addRegistration(srv *netServer) {
	t.regMu.Lock()
	m := t.byPort[srv.port]
	if m == nil {
		m = make(map[uint64]*netServer, 2)
		t.byPort[srv.port] = m
	}
	m[srv.id] = srv
	if t.hot.weighted != nil && t.isHot(srv.port) {
		srv.postedHot.Store(true)
	}
	t.regMu.Unlock()
}

func (t *NetTransport) dropRegistration(srv *netServer) {
	t.regMu.Lock()
	if m := t.byPort[srv.port]; m != nil {
		delete(m, srv.id)
		if len(m) == 0 {
			delete(t.byPort, srv.port)
		}
	}
	t.regMu.Unlock()
}

// postEntry multicasts a posting (or tombstone) for srv from node to
// its posting set: one opPost per owning process, full multicast cost
// charged up front (as on MemTransport, targets on crashed nodes or
// dead processes are skipped silently but still paid for — the flood
// was sent). A crashed origin cannot post.
func (t *NetTransport) postEntry(srv *netServer, node graph.NodeID, active bool) error {
	targets, cost := t.postSets(srv, node)
	return t.postEntryTargets(srv, node, active, targets, cost)
}

// postEntryTargets is postEntry with an explicit target set and
// pre-computed multicast cost — the primitive the epoch migration's
// delta re-posts share with the ordinary posting path.
func (t *NetTransport) postEntryTargets(srv *netServer, node graph.NodeID, active bool, targets []graph.NodeID, cost int64) error {
	if t.crashed[node].Load() {
		return fmt.Errorf("cluster: post %q from %d: %w", srv.port, node, sim.ErrCrashed)
	}
	ps := t.procs.Load()
	e := core.Entry{
		Port:     srv.port,
		Addr:     node,
		ServerID: srv.id,
		Time:     t.clock.Add(1),
		Active:   active,
	}
	t.passes.Add(int(node), cost)
	sc := t.scratch.Get().(*netScratch)
	sc.reset(len(ps.pools))
	for _, v := range targets {
		if t.crashed[v].Load() {
			continue
		}
		p := ps.ownerOf[v]
		sc.reqs[p] = netwire.AppendUvarint(sc.reqs[p], uint64(v))
		sc.reqs[p] = appendEntry(sc.reqs[p], e)
	}
	t.fanout(ps, sc, opPost)
	t.scratch.Put(sc)
	return nil
}

// fanout issues one call per process with a non-empty request body,
// pipelined: every request is started before any response is awaited,
// so the wall-clock cost is the slowest peer's round trip, not the sum
// — and no goroutines or waitgroups are allocated, which is what keeps
// the locate hot path at zero heap allocations. Responses land in
// sc.resps and errors in sc.errs; calls to dead processes fail fast
// and are recorded, and the operation treats them as silence — the
// fail-silent crash semantics of the paper.
func (t *NetTransport) fanout(ps *procSet, sc *netScratch, op byte) {
	for p := range ps.pools {
		if len(sc.reqs[p]) == 0 {
			continue
		}
		pd, err := ps.pools[p].Start(op, sc.reqs[p])
		if err != nil {
			t.noteProcDown(ps, p)
			sc.errs[p] = err
			continue
		}
		sc.calls[p] = pd
	}
	for p := range ps.pools {
		pd := sc.calls[p]
		if pd == nil {
			continue
		}
		sc.calls[p] = nil
		st, body, err := pd.Wait(sc.resps[p][:0], ps.pools[p].CallTimeout)
		if err != nil {
			t.noteProcDown(ps, p)
		} else {
			ps.downP[p].Store(false)
			if st != stOK {
				err = fmt.Errorf("cluster: %s op %d: status %d", ps.addrs[p], op, st)
			}
		}
		if body != nil {
			sc.resps[p] = body
		}
		sc.errs[p] = err
	}
}

// Locate implements Transport: the query multicast cost is charged up
// front, the flood fans out to the owning processes, and every
// rendezvous hit is charged its reply distance — the same charges, and
// the same freshest-entry winner, as MemTransport.Locate. On a
// replicated transport a silent flood — crashed rendezvous nodes or a
// killed node process — falls through the replica families in order.
func (t *NetTransport) Locate(client graph.NodeID, port core.Port) (core.Entry, error) {
	e, _, err := locateFallthrough(t, client, port, 0)
	return e, err
}

// LocateReplica implements ReplicatedTransport: one query flood over
// replica k's query set only, with MemTransport's exact charges (and
// MemTransport's dual-epoch family indexing on elastic transports).
// Unless NetOptions.DisableCoalescing is set the flood goes through
// the coalescer, which merges concurrent locates into shared wire
// frames without changing answers or charges.
func (t *NetTransport) LocateReplica(client graph.NodeID, port core.Port, replica int) (core.Entry, error) {
	if co := t.coal; co != nil {
		return co.locate(client, port, replica)
	}
	return t.locateReplicaDirect(client, port, replica)
}

// locateReplicaDirect is one uncoalesced replica flood: the primitive
// both the coalescer's single-op passthrough and the disabled-coalescer
// path run.
func (t *NetTransport) locateReplicaDirect(client graph.NodeID, port core.Port, replica int) (core.Entry, error) {
	e, _, err := t.locateReplicaFrom(client, port, replica)
	return e, err
}

// locateReplicaFrom is locateReplicaDirect attributing the winning
// reply to the rendezvous node that sent it — the answerer identity the
// Byzantine voting path holds nodes accountable by.
func (t *NetTransport) locateReplicaFrom(client graph.NodeID, port core.Port, replica int) (core.Entry, graph.NodeID, error) {
	if !t.g.Valid(client) {
		return core.Entry{}, 0, fmt.Errorf("cluster: locate from %d: %w", client, graph.ErrNodeRange)
	}
	if t.crashed[client].Load() {
		return core.Entry{}, 0, fmt.Errorf("cluster: locate from %d: %w", client, sim.ErrCrashed)
	}
	var (
		targets []graph.NodeID
		cost    int64
		dual    bool
	)
	et := t.elastic.Load()
	if et != nil {
		etargets, ecost, tab, _, ok := et.queryFor(client, replica)
		if !ok {
			return core.Entry{}, 0, errRetiredReplica(port, client, replica)
		}
		if len(etargets) == 0 {
			return core.Entry{}, 0, errMissingEpochFlood(port, client)
		}
		targets, cost, dual = etargets, ecost, tab != et
	} else {
		if replica < 0 || replica >= t.Replicas() {
			return core.Entry{}, 0, fmt.Errorf("cluster: replica %d out of [0,%d)", replica, t.Replicas())
		}
		targets, cost = t.hot.replicaQuerySets(client, port, replica)
	}
	ps := t.procs.Load()
	t.passes.Add(int(client), cost)
	sc := t.scratch.Get().(*netScratch)
	sc.reset(len(ps.pools))
	t.groupQuery(ps, sc, 0, port, targets)
	t.fanout(ps, sc, t.queryOp())
	var (
		best  core.Entry
		from  graph.NodeID
		found bool
		bulk  int64
	)
	for p := range ps.pools {
		if len(sc.nodes[p]) == 0 || sc.errs[p] != nil {
			continue // a dead process's caches are silent misses
		}
		d := netwire.NewDec(sc.resps[p])
		for _, v := range sc.nodes[p] {
			e, ok := t.decodeNodeAnswer(et, &d, v, port, replica)
			if !ok {
				continue
			}
			bulk += int64(t.routing.Dist(v, client))
			if !found || e.Time > best.Time {
				best, from, found = e, v, true
			}
		}
	}
	t.scratch.Put(sc)
	if bulk != 0 {
		t.passes.Add(int(client), bulk)
	}
	if !found {
		return core.Entry{}, 0, fmt.Errorf("cluster: locate %q from %d: %w", port, client, core.ErrNotFound)
	}
	if dual {
		t.dualLocates.Add(1)
	}
	return best, from, nil
}

// queryOp returns the wire operation a locate flood travels as:
// opQuery (one flag+freshest answer per node) normally, opQueryAll when
// replicated or elastic — the coordinator must see every candidate
// entry per node to reduce them to the family's freshest itself, since
// the node processes are family- and epoch-agnostic.
func (t *NetTransport) queryOp() byte {
	if t.rp != nil || t.elastic.Load() != nil {
		return opQueryAll
	}
	return opQuery
}

// decodeNodeAnswer consumes node v's answer from d in queryOp's wire
// format and reduces it to this flood's model-level reply: the entry
// the node answered with, or — on a replicated or elastic flood — the
// freshest entry the node holds as a member of the flood's (dual-epoch)
// replica family. port is the flood's queried port, which the decoder
// reuses for the entries' port strings (decodeEntryFor) so the hot
// path decodes without copying out of the frame buffer. ok is false
// for a silent miss (including "holds entries, none of this family",
// which the model treats as silence and charges nothing for).
func (t *NetTransport) decodeNodeAnswer(et *epochTables, d *netwire.Dec, v graph.NodeID, port core.Port, replica int) (core.Entry, bool) {
	var inFamily func(origin graph.NodeID) bool
	switch {
	case et != nil:
		tab, fam, ok := et.resolve(replica)
		if !ok {
			return core.Entry{}, false
		}
		inFamily = func(origin graph.NodeID) bool { return tab.ep.InPost(fam, origin, v) }
	case t.rp != nil:
		inFamily = func(origin graph.NodeID) bool { return t.rp.InPost(replica, origin, v) }
	default:
		if d.Byte() == 0 {
			return core.Entry{}, false
		}
		e := decodeEntryFor(d, port)
		return e, d.Err() == nil
	}
	cnt := int(d.Uvarint())
	var (
		best  core.Entry
		found bool
	)
	for j := 0; j < cnt; j++ {
		e := decodeEntryFor(d, port)
		if d.Err() != nil {
			return core.Entry{}, false
		}
		if !inFamily(e.Addr) {
			continue
		}
		if !found || e.Time > best.Time {
			best, found = e, true
		}
	}
	return best, found
}

// groupQuery appends one sub-request (for original request index req)
// to each process owning any of targets, skipping locally-crashed
// nodes, and records the grouping for response decoding.
func (t *NetTransport) groupQuery(ps *procSet, sc *netScratch, req int, port core.Port, targets []graph.NodeID) {
	for p := range ps.pools {
		// Snapshot the include/skip decision for each target exactly once
		// (into sc.nodes), then encode from the snapshot: a concurrent
		// Crash flipping t.crashed mid-grouping must not let the declared
		// node count disagree with the ids that follow it on the wire.
		start := len(sc.nodes[p])
		for _, v := range targets {
			if ps.ownerOf[v] == p && !t.crashed[v].Load() {
				sc.nodes[p] = append(sc.nodes[p], v)
			}
		}
		n := len(sc.nodes[p]) - start
		if n == 0 {
			continue
		}
		sc.reqs[p] = netwire.AppendString(sc.reqs[p], string(port))
		sc.reqs[p] = netwire.AppendUvarint(sc.reqs[p], uint64(n))
		for _, v := range sc.nodes[p][start:] {
			sc.reqs[p] = netwire.AppendUvarint(sc.reqs[p], uint64(v))
		}
		sc.cnts[p] = append(sc.cnts[p], n)
		sc.idx[p] = append(sc.idx[p], req)
	}
}

// LocateBatch implements Transport: the whole batch's store accesses
// are grouped per owning process — each process sees one request frame
// per batch — and the total charge is identical to the equivalent
// sequence of Locate calls, as on the other transports; on a replicated
// transport the misses of one pass re-flood the next family as a
// sub-batch, exactly like mem.
func (t *NetTransport) LocateBatch(reqs []LocateReq, res []LocateRes) {
	n := len(reqs)
	if len(res) < n {
		n = len(res)
	}
	t.locateBatchReplica(reqs[:n], res[:n], 0)
	if r := t.Replicas(); r > 1 {
		batchFallthrough(reqs[:n], res[:n], r, t.locateBatchReplica)
	}
}

// locateBatchReplica runs one process-grouped batch pass over replica
// k's query sets (dual-epoch family indexing on elastic transports);
// reqs and res have equal length.
func (t *NetTransport) locateBatchReplica(reqs []LocateReq, res []LocateRes, replica int) {
	n := len(reqs)
	et := t.elastic.Load()
	var (
		etab *epochTables
		efam int
	)
	if et != nil {
		tab, fam, ok := et.resolve(replica)
		if !ok {
			for i := 0; i < n; i++ {
				res[i] = LocateRes{Err: errRetiredReplica(reqs[i].Port, reqs[i].Client, replica)}
			}
			return
		}
		etab, efam = tab, fam
	}
	ps := t.procs.Load()
	sc := t.scratch.Get().(*netScratch)
	sc.reset(len(ps.pools))
	if cap(sc.found) < n {
		sc.found = make([]bool, n)
	}
	sc.found = sc.found[:n]
	for i := range sc.found {
		sc.found[i] = false
	}
	var bulk int64
	for i := 0; i < n; i++ {
		r := reqs[i]
		res[i] = LocateRes{}
		if !t.g.Valid(r.Client) {
			res[i].Err = fmt.Errorf("cluster: locate from %d: %w", r.Client, graph.ErrNodeRange)
			continue
		}
		if t.crashed[r.Client].Load() {
			res[i].Err = fmt.Errorf("cluster: locate from %d: %w", r.Client, sim.ErrCrashed)
			continue
		}
		var (
			targets []graph.NodeID
			cost    int64
		)
		if etab != nil {
			targets, cost = etab.query[efam][r.Client], etab.queryCost[efam][r.Client]
			if len(targets) == 0 {
				res[i].Err = errMissingEpochFlood(r.Port, r.Client)
				continue
			}
		} else {
			targets, cost = t.hot.replicaQuerySets(r.Client, r.Port, replica)
		}
		bulk += cost
		t.groupQuery(ps, sc, i, r.Port, targets)
	}
	t.fanout(ps, sc, t.queryOp())
	for p := range ps.pools {
		if len(sc.idx[p]) == 0 || sc.errs[p] != nil {
			continue
		}
		d := netwire.NewDec(sc.resps[p])
		off := 0
		for j, req := range sc.idx[p] {
			for k := 0; k < sc.cnts[p][j]; k++ {
				v := sc.nodes[p][off]
				off++
				e, ok := t.decodeNodeAnswer(et, &d, v, reqs[req].Port, replica)
				if !ok {
					continue
				}
				bulk += int64(t.routing.Dist(v, reqs[req].Client))
				if !sc.found[req] || e.Time > res[req].Entry.Time {
					res[req].Entry = e
					sc.found[req] = true
				}
			}
		}
	}
	var dual int64
	for i := 0; i < n; i++ {
		if res[i].Err == nil && !sc.found[i] {
			res[i].Err = fmt.Errorf("cluster: locate %q from %d: %w", reqs[i].Port, reqs[i].Client, core.ErrNotFound)
		} else if res[i].Err == nil && etab != nil && etab != et {
			dual++
		}
	}
	if dual > 0 {
		t.dualLocates.Add(dual)
	}
	t.scratch.Put(sc)
	t.passes.Add(0, bulk)
}

// PostBatch implements Transport: registrations are validated up
// front, liveness records land on their owners, and the whole batch's
// postings are delivered with one opPost frame per process, the summed
// multicast cost charged in one add — the same totals as the
// equivalent sequence of Registers.
func (t *NetTransport) PostBatch(regs []Registration) ([]ServerRef, error) {
	et := t.elastic.Load()
	for _, r := range regs {
		if !t.g.Valid(r.Node) {
			return nil, fmt.Errorf("cluster: register at %d: %w", r.Node, graph.ErrNodeRange)
		}
		if et != nil && !et.ep.Contains(r.Node) {
			return nil, errOutsideMembership(r.Port, r.Node, et.ep)
		}
		if t.crashed[r.Node].Load() {
			return nil, fmt.Errorf("cluster: post %q from %d: %w", r.Port, r.Node, sim.ErrCrashed)
		}
	}
	t.lifeMu.RLock()
	defer t.lifeMu.RUnlock()
	ps := t.procs.Load()
	refs := make([]ServerRef, len(regs))
	servers := make([]*netServer, len(regs))
	for i, r := range regs {
		servers[i] = &netServer{t: t, port: r.Port, id: t.serverID.Add(1), node: r.Node}
		t.addRegistration(servers[i])
		refs[i] = servers[i]
		if err := t.registerRemote(ps, servers[i].id, r.Port, r.Node); err != nil {
			for j := 0; j <= i; j++ {
				t.dropRegistration(servers[j])
				_ = t.deregisterRemote(ps, servers[j].id, regs[j].Node)
			}
			return nil, err
		}
	}
	// Re-check membership after publishing (see Register): a shrink
	// Resize racing this batch either snapshotted these servers (and
	// validated them) or its epoch is visible here.
	if et := t.elastic.Load(); et != nil {
		for _, r := range regs {
			if !et.ep.Contains(r.Node) {
				for j := range servers {
					t.dropRegistration(servers[j])
					_ = t.deregisterRemote(ps, servers[j].id, regs[j].Node)
				}
				return nil, errOutsideMembership(r.Port, r.Node, et.ep)
			}
		}
	}
	sc := t.scratch.Get().(*netScratch)
	sc.reset(len(ps.pools))
	var bulk int64
	for i, r := range regs {
		targets, cost := t.postSets(servers[i], r.Node)
		bulk += cost
		e := core.Entry{
			Port:     r.Port,
			Addr:     r.Node,
			ServerID: servers[i].id,
			Time:     t.clock.Add(1),
			Active:   true,
		}
		for _, v := range targets {
			if t.crashed[v].Load() {
				continue
			}
			p := ps.ownerOf[v]
			sc.reqs[p] = netwire.AppendUvarint(sc.reqs[p], uint64(v))
			sc.reqs[p] = appendEntry(sc.reqs[p], e)
		}
	}
	t.fanout(ps, sc, opPost)
	t.scratch.Put(sc)
	t.passes.Add(0, bulk)
	for _, r := range regs {
		t.gens.bump(r.Port)
	}
	return refs, nil
}

// Probe implements Transport: the owner process of the hinted address
// answers from its live table, and the transport charges 2×Dist for an
// answered probe (positive or negative) or 1×Dist when the address is
// crashed or its process is gone — the request was swallowed, exactly
// the MemTransport charge.
func (t *NetTransport) Probe(client graph.NodeID, e core.Entry) (core.Entry, error) {
	if !t.g.Valid(client) {
		return core.Entry{}, fmt.Errorf("cluster: probe from %d: %w", client, graph.ErrNodeRange)
	}
	if !t.g.Valid(e.Addr) {
		return core.Entry{}, fmt.Errorf("cluster: probe at %d: %w", e.Addr, graph.ErrNodeRange)
	}
	if t.crashed[client].Load() {
		return core.Entry{}, fmt.Errorf("cluster: probe from %d: %w", client, sim.ErrCrashed)
	}
	d := int64(t.routing.Dist(client, e.Addr))
	if t.crashed[e.Addr].Load() {
		t.passes.Add(int(client), d) // request swallowed by the crash
		return core.Entry{}, fmt.Errorf("cluster: probe %q at %d: %w", e.Port, e.Addr, sim.ErrCrashed)
	}
	ps := t.procs.Load()
	buf := netwire.GetBuf()
	req := netwire.AppendString(*buf, string(e.Port))
	req = netwire.AppendUvarint(req, uint64(e.Addr))
	req = netwire.AppendUvarint(req, e.ServerID)
	*buf = req
	st, _, err := t.callProc(ps, ps.ownerOf[e.Addr], opProbe, req, nil)
	netwire.PutBuf(buf)
	if err != nil || st == stCrashed {
		t.passes.Add(int(client), d) // no answer came back
		return core.Entry{}, fmt.Errorf("cluster: probe %q at %d: %w", e.Port, e.Addr, sim.ErrCrashed)
	}
	t.passes.Add(int(client), 2*d) // request + reply (positive or negative)
	if st == stOK {
		return core.Entry{Port: e.Port, Addr: e.Addr, ServerID: e.ServerID, Time: e.Time, Active: true}, nil
	}
	return core.Entry{}, fmt.Errorf("cluster: probe %q at %d: %w", e.Port, e.Addr, core.ErrNotFound)
}

// LocateAll implements Transport, with MemTransport's charges: the
// query flood cost plus each answering node's reply distance times its
// entry count — and the same replica fallthrough as Locate.
func (t *NetTransport) LocateAll(client graph.NodeID, port core.Port) ([]core.Entry, error) {
	return locateAllFallthrough(t.Replicas(), func(k int) ([]core.Entry, error) {
		return t.locateAllReplica(client, port, k)
	})
}

// locateAllReplica is one locate-all flood over replica k's query set
// (dual-epoch family indexing on elastic transports).
func (t *NetTransport) locateAllReplica(client graph.NodeID, port core.Port, replica int) ([]core.Entry, error) {
	if !t.g.Valid(client) {
		return nil, fmt.Errorf("cluster: locate-all from %d: %w", client, graph.ErrNodeRange)
	}
	if t.crashed[client].Load() {
		return nil, fmt.Errorf("cluster: locate-all from %d: %w", client, sim.ErrCrashed)
	}
	var (
		targets []graph.NodeID
		cost    int64
		etab    *epochTables
		efam    int
	)
	if et := t.elastic.Load(); et != nil {
		etargets, ecost, tab, fam, ok := et.queryFor(client, replica)
		if !ok {
			return nil, errRetiredReplica(port, client, replica)
		}
		if len(etargets) == 0 {
			return nil, errMissingEpochFlood(port, client)
		}
		targets, cost, etab, efam = etargets, ecost, tab, fam
	} else {
		targets, cost = t.hot.replicaQuerySets(client, port, replica)
	}
	ps := t.procs.Load()
	t.passes.Add(int(client), cost)
	sc := t.scratch.Get().(*netScratch)
	sc.reset(len(ps.pools))
	t.groupQuery(ps, sc, 0, port, targets)
	t.fanout(ps, sc, opQueryAll)
	freshest := make(map[uint64]core.Entry, 4)
	for p := range ps.pools {
		if len(sc.nodes[p]) == 0 || sc.errs[p] != nil {
			continue
		}
		d := netwire.NewDec(sc.resps[p])
		for _, v := range sc.nodes[p] {
			cnt := int(d.Uvarint())
			answered := int64(0)
			for k := 0; k < cnt; k++ {
				e := decodeEntryFor(&d, port)
				if d.Err() != nil {
					break
				}
				if etab != nil {
					if !etab.ep.InPost(efam, e.Addr, v) {
						continue // not this epoch-family's posting here
					}
				} else if t.rp != nil && !t.rp.InPost(replica, e.Addr, v) {
					continue // not this family's posting here: model silence
				}
				answered++
				if cur, ok := freshest[e.ServerID]; !ok || e.Time > cur.Time {
					freshest[e.ServerID] = e
				}
			}
			if answered > 0 {
				t.passes.Add(int(client), int64(t.routing.Dist(v, client))*answered)
			}
		}
	}
	t.scratch.Put(sc)
	var out []core.Entry
	for _, e := range freshest {
		if e.Active {
			out = append(out, e)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cluster: locate-all %q from %d: %w", port, client, core.ErrNotFound)
	}
	return out, nil
}

// SetHotPorts implements HotReclassifier with MemTransport's promotion
// protocol: newly hot ports have their live servers reposted under the
// union sets (the repost traffic charged like any posting) before the
// classification is published, so a hot query never races ahead of the
// postings it needs; demotion is safe immediately because union ⊇ base.
func (t *NetTransport) SetHotPorts(ports []core.Port) error {
	if t.hot.weighted == nil {
		return fmt.Errorf("cluster: transport %q has no weighted strategy", t.Name())
	}
	t.lifeMu.RLock()
	defer t.lifeMu.RUnlock()
	newHot := make(map[core.Port]bool, len(ports))
	for _, p := range ports {
		newHot[p] = true
	}
	t.regMu.Lock()
	defer t.regMu.Unlock()
	var errs []error
	for p := range newHot {
		if t.isHot(p) {
			continue // already hot; servers already post union
		}
		for _, srv := range t.byPort[p] {
			srv.mu.Lock()
			node, gone := srv.node, srv.gone
			srv.mu.Unlock()
			if gone {
				continue
			}
			srv.postedHot.Store(true)
			if err := t.postEntry(srv, node, true); err != nil {
				errs = append(errs, err)
			}
		}
	}
	t.hot.publish(&newHot)
	return errors.Join(errs...)
}

// Elastic implements ElasticTransport.
func (t *NetTransport) Elastic() bool { return t.elastic.Load() != nil }

// Epoch implements ElasticTransport: the serving epoch's sequence
// number (0 when elastic membership is off).
func (t *NetTransport) Epoch() uint64 {
	if et := t.elastic.Load(); et != nil {
		return et.ep.Seq()
	}
	return 0
}

// Resizing implements ElasticTransport.
func (t *NetTransport) Resizing() bool {
	et := t.elastic.Load()
	return et != nil && et.prev != nil
}

// MigratedPosts implements ElasticTransport.
func (t *NetTransport) MigratedPosts() int64 { return t.migrated.Load() }

// DualEpochLocates implements ElasticTransport.
func (t *NetTransport) DualEpochLocates() int64 { return t.dualLocates.Load() }

// Resize implements ElasticTransport with MemTransport's protocol: the
// new epoch's tables are installed on this coordinator, every live
// server's entry is re-posted over the wire to exactly the rendezvous
// nodes the minimal-movement remap added (each delta charged its
// multicast-tree cost), and hint generations are bumped for moved
// ports only. Each server's mutex is held across its delta re-post so
// the fresh-timestamped migration posting cannot race a concurrent
// Deregister or Migrate into resurrecting it.
func (t *NetTransport) Resize(next *strategy.Epoch) (int, error) {
	if t.elastic.Load() == nil {
		return 0, ErrNotElastic
	}
	t.lifeMu.RLock()
	defer t.lifeMu.RUnlock()
	t.resizeMu.Lock()
	defer t.resizeMu.Unlock()
	cur := t.elastic.Load()
	if cur.prev != nil {
		return 0, fmt.Errorf("cluster: resize to epoch %d: migration from epoch %d still draining", next.Seq(), cur.prev.ep.Seq())
	}
	if err := validateNextEpoch(cur.ep, next, t.g.N()); err != nil {
		return 0, err
	}
	nt, err := newEpochTables(t.g, t.routing, next, cur)
	if err != nil {
		return 0, err
	}
	t.regMu.Lock()
	var servers []*netServer
	for _, m := range t.byPort {
		for _, srv := range m {
			srv.mu.Lock()
			node, gone := srv.node, srv.gone
			srv.mu.Unlock()
			if gone {
				continue
			}
			if !next.Contains(node) {
				t.regMu.Unlock()
				return 0, errServerOutsideEpoch(srv.port, node, next)
			}
			servers = append(servers, srv)
		}
	}
	t.elastic.Store(nt)
	t.regMu.Unlock()

	moved := 0
	movedPorts := make(map[core.Port]bool)
	for _, srv := range servers {
		srv.mu.Lock()
		if srv.gone {
			srv.mu.Unlock()
			continue
		}
		node := srv.node
		added := nt.rm.Added(node)
		if len(added) == 0 {
			srv.mu.Unlock()
			continue
		}
		cost, err := t.routing.MulticastCost(node, added)
		if err == nil {
			err = t.postEntryTargets(srv, node, true, added, int64(cost))
		}
		srv.mu.Unlock()
		if err != nil {
			continue // a crashed origin cannot migrate its postings
		}
		moved += len(added)
		movedPorts[srv.port] = true
	}
	for port := range movedPorts {
		t.gens.bump(port)
	}
	t.migrated.Add(int64(moved))
	return moved, nil
}

// FinishResize implements ElasticTransport: the dual-epoch phase ends
// and the old-epoch-only postings of every live server expire on their
// node processes via opExpire — each node's local garbage collection,
// charged zero message passes like MemTransport's.
func (t *NetTransport) FinishResize() error {
	if t.elastic.Load() == nil {
		return ErrNotElastic
	}
	t.lifeMu.RLock()
	defer t.lifeMu.RUnlock()
	t.resizeMu.Lock()
	defer t.resizeMu.Unlock()
	cur := t.elastic.Load()
	if cur.prev == nil {
		return fmt.Errorf("cluster: no resize in progress")
	}
	t.regMu.Lock()
	t.elastic.Store(cur.retired())
	var servers []*netServer
	for _, m := range t.byPort {
		for _, srv := range m {
			servers = append(servers, srv)
		}
	}
	t.regMu.Unlock()
	ps := t.procs.Load()
	sc := t.scratch.Get().(*netScratch)
	sc.reset(len(ps.pools))
	for _, srv := range servers {
		srv.mu.Lock()
		node, gone := srv.node, srv.gone
		srv.mu.Unlock()
		if gone {
			continue
		}
		for _, v := range cur.rm.Removed(node) {
			p := ps.ownerOf[v]
			sc.reqs[p] = netwire.AppendUvarint(sc.reqs[p], uint64(v))
			sc.reqs[p] = netwire.AppendString(sc.reqs[p], string(srv.port))
			sc.reqs[p] = netwire.AppendUvarint(sc.reqs[p], srv.id)
		}
	}
	t.fanout(ps, sc, opExpire)
	t.scratch.Put(sc)
	return nil
}

// Rescale re-partitions the node space across a different node-process
// set: the new processes are dialed and handshaken, each new partition
// is filled by a coordinator-driven transfer from the old processes
// (postings including tombstones, liveness records, crash marks — see
// opSnapshot), and the process set is swapped atomically so operations
// in flight keep a consistent snapshot. The transfer moves state, not
// match-making traffic, so it charges no message passes; ranges whose
// donor died mid-transfer are rebuilt from the client-side
// registration mirror instead (repairRange — charged like any repair
// re-post), which is what makes a kill -9 of a donor survivable at
// r ≥ 2. Old pools are closed after the swap; the old processes'
// lifecycle belongs to the orchestrator (mmctl scale drains them).
func (t *NetTransport) Rescale(newAddrs []string) error {
	t.rescaleMu.Lock()
	defer t.rescaleMu.Unlock()
	nps, err := dialProcSet(newAddrs, t.g.N(), t.opts, &t.wire)
	if err != nil {
		return err
	}
	// Hold the lifecycle fence exclusively across the transfer and the
	// swap: a register/tombstone/migrate landing on an old process
	// after its partition was snapshotted would silently miss the new
	// set (a lost tombstone resurrects a deregistered server), so
	// lifecycle writes wait out the handoff instead.
	t.lifeMu.Lock()
	old := t.procs.Load()
	lost := transferPartitions(old, nps)
	t.procs.Store(nps)
	for _, r := range lost {
		t.repairRange(nps, r[0], r[1])
	}
	t.lifeMu.Unlock()
	t.gens.bumpAll()
	old.close()
	return nil
}

// DonorProc names one old-set process for TransferPartitions: its
// address and the node range [Lo, Hi) it owned. The range comes from
// the caller's records (mmctl's state file) rather than a hello
// handshake, so a donor that is already dead still has a well-defined
// range to report as lost.
type DonorProc struct {
	Addr   string
	Lo, Hi int
}

// TransferPartitions connects to an old and a new node-process set
// covering the same n nodes and copies every new process's partition
// from the old — the state-handoff step of a process rescale, usable
// standalone by orchestrators (mmctl scale) before they drain the old
// workers. It moves state, not match-making traffic, so nothing is
// charged. Unreachable donors are tolerated — including donors dead
// before the transfer starts: the node ranges whose state could not
// be copied are returned, for the consuming transports' repair loops
// to rebuild by re-posting.
func TransferPartitions(old []DonorProc, newAddrs []string, n int, opts NetOptions) ([][2]int, error) {
	if len(old) == 0 {
		return nil, fmt.Errorf("cluster: transfer: no donor processes")
	}
	next := 0
	for _, d := range old {
		if d.Lo != next || d.Hi <= d.Lo || d.Hi > n {
			return nil, fmt.Errorf("cluster: transfer: donor %s owns [%d,%d), want contiguous from %d", d.Addr, d.Lo, d.Hi, next)
		}
		next = d.Hi
	}
	if next != n {
		return nil, fmt.Errorf("cluster: transfer: donors cover [0,%d) of %d nodes", next, n)
	}
	ops := &procSet{
		addrs:      make([]string, len(old)),
		pools:      make([]*netwire.Pool, len(old)),
		ownerOf:    make([]int, n),
		ranges:     make([][2]int, len(old)),
		downP:      make([]atomic.Bool, len(old)),
		needRepair: make([]atomic.Bool, len(old)),
	}
	for i, d := range old {
		ops.addrs[i] = d.Addr
		ops.ranges[i] = [2]int{d.Lo, d.Hi}
		for v := d.Lo; v < d.Hi; v++ {
			ops.ownerOf[v] = i
		}
		p := netwire.NewPool(d.Addr, opts.ConnsPerProc)
		if opts.DialTimeout > 0 {
			p.DialTimeout = opts.DialTimeout
		}
		p.CallTimeout = opts.CallTimeout
		ops.pools[i] = p
	}
	defer ops.close()
	nps, err := dialProcSet(newAddrs, n, opts, nil)
	if err != nil {
		return nil, fmt.Errorf("cluster: transfer: new set: %w", err)
	}
	defer nps.close()
	return transferPartitions(ops, nps), nil
}

// transferPartitions fills every new process's partition from the old
// process set, chunked by overlapping donor range. Donor failures are
// tolerated: the affected ranges are returned for repair from the
// client-side registration mirror.
func transferPartitions(old, nps *procSet) (lost [][2]int) {
	for q := range nps.pools {
		qlo, qhi := nps.ranges[q][0], nps.ranges[q][1]
		for p := range old.pools {
			lo, hi := max(qlo, old.ranges[p][0]), min(qhi, old.ranges[p][1])
			if hi <= lo {
				continue
			}
			if err := transferChunk(old, p, nps, q, lo, hi); err != nil {
				lost = append(lost, [2]int{lo, hi})
			}
		}
	}
	return lost
}

// transferChunk snapshots [lo, hi) from old process p and replays it
// onto new process q: postings first, then liveness records, then
// crash marks (whose handler clears the crashed nodes' just-copied
// stores, matching the volatile-loss semantics).
func transferChunk(old *procSet, p int, nps *procSet, q, lo, hi int) error {
	buf := netwire.GetBuf()
	defer netwire.PutBuf(buf)
	req := netwire.AppendUvarint(*buf, uint64(lo))
	req = netwire.AppendUvarint(req, uint64(hi))
	*buf = req
	st, body, err := old.pools[p].Call(opSnapshot, req, nil)
	if err != nil {
		return err
	}
	if st != stOK {
		return fmt.Errorf("cluster: snapshot [%d,%d) from %s: status %d", lo, hi, old.addrs[p], st)
	}
	d := netwire.NewDec(body)
	nPost := int(d.Uvarint())
	var post []byte
	for i := 0; i < nPost; i++ {
		node := d.Uvarint()
		e := decodeEntry(&d)
		if d.Err() != nil {
			return fmt.Errorf("cluster: snapshot [%d,%d) from %s: %w", lo, hi, old.addrs[p], d.Err())
		}
		post = netwire.AppendUvarint(post, node)
		post = appendEntry(post, e)
	}
	if len(post) > 0 {
		if st, _, err := nps.pools[q].Call(opPost, post, nil); err != nil || st != stOK {
			return fmt.Errorf("cluster: replay postings onto %s: status %d err %w", nps.addrs[q], st, err)
		}
	}
	nLive := int(d.Uvarint())
	for i := 0; i < nLive; i++ {
		id := d.Uvarint()
		port := d.String()
		node := d.Uvarint()
		if d.Err() != nil {
			return fmt.Errorf("cluster: snapshot [%d,%d) from %s: %w", lo, hi, old.addrs[p], d.Err())
		}
		var reg []byte
		reg = netwire.AppendUvarint(reg, id)
		reg = netwire.AppendString(reg, port)
		reg = netwire.AppendUvarint(reg, node)
		if st, _, err := nps.pools[q].Call(opRegister, reg, nil); err != nil || (st != stOK && st != stCrashed) {
			return fmt.Errorf("cluster: replay liveness onto %s: status %d err %w", nps.addrs[q], st, err)
		}
	}
	nCrashed := int(d.Uvarint())
	for i := 0; i < nCrashed; i++ {
		node := d.Uvarint()
		if d.Err() != nil {
			return fmt.Errorf("cluster: snapshot [%d,%d) from %s: %w", lo, hi, old.addrs[p], d.Err())
		}
		var cr []byte
		cr = netwire.AppendUvarint(cr, node)
		if st, _, err := nps.pools[q].Call(opCrash, cr, nil); err != nil || st != stOK {
			return fmt.Errorf("cluster: replay crash marks onto %s: status %d err %w", nps.addrs[q], st, err)
		}
	}
	return nil
}

// Crash implements Transport: the crash mark is mirrored locally (for
// the same origin/target charges as MemTransport) and delivered to the
// owning process, which clears the node's volatile cache and stops
// answering for it. Every hint generation is bumped.
func (t *NetTransport) Crash(node graph.NodeID) error {
	if !t.g.Valid(node) {
		return fmt.Errorf("cluster: crash %d: %w", node, graph.ErrNodeRange)
	}
	t.crashed[node].Store(true)
	t.crashRemote(node, opCrash)
	t.gens.bumpAll()
	t.events.emit(Event{Type: EvCrash, Node: node})
	return nil
}

// Restore implements Transport.
func (t *NetTransport) Restore(node graph.NodeID) error {
	if !t.g.Valid(node) {
		return fmt.Errorf("cluster: restore %d: %w", node, graph.ErrNodeRange)
	}
	t.crashed[node].Store(false)
	t.crashRemote(node, opRestore)
	t.events.emit(Event{Type: EvRestore, Node: node})
	return nil
}

// SetEventSink implements EventSource: explicit crash/restore marks
// are pushed as EvCrash/EvRestore, and the process health tracking
// raises EvProcDown on the first failed call against a node-shard
// process (the kill -9 signal) and EvProcUp when the repair loop has
// rebuilt a recovered process's range.
func (t *NetTransport) SetEventSink(fn EventSink) { t.events.set(fn) }

// crashRemote delivers a crash/restore mark to node's owner; a dead
// process is already maximally crashed, so delivery failures are
// ignored.
func (t *NetTransport) crashRemote(node graph.NodeID, op byte) {
	ps := t.procs.Load()
	buf := netwire.GetBuf()
	req := netwire.AppendUvarint(*buf, uint64(node))
	*buf = req
	_, _, _ = t.callProc(ps, ps.ownerOf[node], op, req, nil)
	netwire.PutBuf(buf)
}

// Passes implements Transport: the routing-derived pass total, charged
// locally by the coordinator — the wire traffic itself is an
// implementation vehicle and is never counted.
func (t *NetTransport) Passes() int64 { return t.passes.Load() }

// ResetPasses implements Transport.
func (t *NetTransport) ResetPasses() { t.passes.Reset() }

// WireStats returns the transport's cumulative wire-level traffic
// totals (frames and bytes, both directions, across every node-process
// pool including post-Rescale sets). Wire traffic is an implementation
// vehicle — it is never charged as passes — but frames/locate and
// bytes/locate are the efficiency the coalescer and striping buy, so
// the totals are exposed for load tools to report.
func (t *NetTransport) WireStats() netwire.Stats { return t.wire.Snapshot() }

// CoalesceStats reports the locate coalescer's work so far: locates
// that shared a wire flood with at least one other, and the number of
// those shared floods. Both zero when coalescing is disabled.
func (t *NetTransport) CoalesceStats() (coalesced, floods int64) {
	if t.coal == nil {
		return 0, 0
	}
	return t.coal.coalesced.Load(), t.coal.floods.Load()
}

// Close implements Transport: it stops the repair and reconciliation
// loops and closes the connection pools. The node processes keep
// running — their lifecycle belongs to cmd/mmctl (or whoever spawned
// them).
func (t *NetTransport) Close() error {
	t.recon.halt()
	select {
	case <-t.stopRepair:
	default:
		close(t.stopRepair)
	}
	t.repairWG.Wait()
	if ps := t.procs.Load(); ps != nil {
		ps.close()
	}
	return nil
}

// Port implements ServerRef.
func (s *netServer) Port() core.Port { return s.port }

// Node implements ServerRef.
func (s *netServer) Node() graph.NodeID {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.node
}

// Repost implements ServerRef: a fresh posting multicast, charged at
// the posting-set cost.
func (s *netServer) Repost() error {
	s.t.lifeMu.RLock()
	defer s.t.lifeMu.RUnlock()
	s.mu.Lock()
	node, gone := s.node, s.gone
	s.mu.Unlock()
	if gone {
		return core.ErrServerGone
	}
	return s.t.postEntry(s, node, true)
}

// Migrate implements ServerRef: the liveness record moves to the new
// owner (so probes at the old address answer negatively), then
// tombstone at the old posting set and fresh posting at the new one —
// the same two multicast charges as MemTransport. The port's hint
// generation is bumped so cached addresses re-resolve.
func (s *netServer) Migrate(to graph.NodeID) error {
	if !s.t.g.Valid(to) {
		return fmt.Errorf("cluster: migrate to %d: %w", to, graph.ErrNodeRange)
	}
	if et := s.t.elastic.Load(); et != nil && !et.ep.Contains(to) {
		return errOutsideMembership(s.port, to, et.ep)
	}
	s.t.lifeMu.RLock()
	defer s.t.lifeMu.RUnlock()
	s.mu.Lock()
	if s.gone {
		s.mu.Unlock()
		return core.ErrServerGone
	}
	from := s.node
	s.node = to
	s.mu.Unlock()
	ps := s.t.procs.Load()
	// Re-point the liveness record: same owner → one overwrite; owner
	// change → drop the old record first so a concurrent probe can at
	// worst see a transient miss, never a stale confirmation.
	if ps.ownerOf[from] != ps.ownerOf[to] {
		_ = s.t.deregisterRemote(ps, s.id, from)
	}
	regErr := s.t.registerRemote(ps, s.id, s.port, to)
	defer s.t.gens.bump(s.port)
	tombErr := s.t.postEntry(s, from, false)
	if err := s.t.postEntry(s, to, true); err != nil {
		return errors.Join(regErr, tombErr, err)
	}
	if regErr != nil {
		return regErr
	}
	return nil
}

// Deregister implements ServerRef: the liveness record is removed
// before the tombstone posts, so a probe can never confirm a
// deregistered instance.
func (s *netServer) Deregister() error {
	s.t.lifeMu.RLock()
	defer s.t.lifeMu.RUnlock()
	s.mu.Lock()
	if s.gone {
		s.mu.Unlock()
		return core.ErrServerGone
	}
	s.gone = true
	node := s.node
	s.mu.Unlock()
	s.t.dropRegistration(s)
	_ = s.t.deregisterRemote(s.t.procs.Load(), s.id, node)
	s.t.gens.bump(s.port)
	return s.t.postEntry(s, node, false)
}
