package cluster

import (
	"math/rand"
	"slices"

	"matchmake/internal/core"
	"matchmake/internal/graph"
	"matchmake/internal/strategy"
)

// Byzantine rendezvous: lying nodes, not just corrupted state.
//
// The anti-entropy layer heals a rendezvous node whose *stored* state
// went wrong, but only after the fact — a node that actively answers
// query floods with fabricated entries is never caught at locate time,
// and r-fold replication alone does not help: the fallthrough accepts
// the first family's answer, so one liar in family 0 poisons every
// locate that reaches it. This file is the adversary's half of the
// Byzantine harness: a deterministic, seeded planner (the same
// discipline as CorruptOptions) that arms a chosen number of rendezvous
// nodes to forge locate answers in four classes. The defence — quorum
// answer voting across replica families, with disagreeing nodes
// quarantined — lives in Cluster (Options.VoteQuorum); tolerating f
// liars needs r ≥ 2f+1 families, because a liar corrupts at most the
// families whose filter its forged address passes, and maximally
// disjoint families give each armed node at most one (see
// DESIGN.md §Byzantine).

// ForgeClass selects one lying behaviour for ArmOptions.
type ForgeClass int

// The forgery classes of the Byzantine harness. Each models a distinct
// way a rendezvous node can lie in its *answers* while its stored state
// stays perfectly healthy — which is exactly why anti-entropy digests
// never notice.
const (
	// ForgeFabricate answers with a server instance that never existed:
	// a fresh instance id (offset by forgeIDBase) at a plausible but
	// wrong address.
	ForgeFabricate ForgeClass = iota
	// ForgeStale resurrects a real instance at the wrong address — the
	// answer a node would give if it replayed a retired posting it was
	// told to forget.
	ForgeStale
	// ForgeWrongPort echoes a record under a different port name than
	// the one queried — a misdirection that keeps the true address.
	ForgeWrongPort
	// ForgeSilence refuses to answer queries it could serve — selective
	// silence, indistinguishable on the wire from a §1.5 miss.
	ForgeSilence
)

// forgedTime is the poisoned logical timestamp every forged answer
// carries: far above the honest posting clocks, so the lie wins its
// family's freshest-entry reduction against any honest co-member, yet
// distinct from corruptMaskTime (1<<62) so the two harnesses cannot be
// confused in a trace.
const forgedTime = uint64(1) << 61

// forgeIDBase offsets fabricated instance ids far above anything the
// transports' server-id counters reach, so a fabricated instance can
// never collide with — or be probed as — a real registration.
const forgeIDBase = uint64(1) << 40

// ForgedIDBase and ForgedTime export the adversary's markers for
// harnesses (mmload, mmctl chaos) that judge surfaced answers against
// registration ground truth: an instance id at or above ForgedIDBase
// can only have come from a fabricated lie, and ForgedTime is the
// poisoned timestamp every forged entry carries.
const (
	ForgedIDBase = forgeIDBase
	ForgedTime   = forgedTime
)

// ArmOptions parameterizes the answer-forging adversary. Equal options
// over equal registration tables arm identical nodes with identical
// lies on every transport — the determinism the sim=mem=net voting
// equivalence gates rely on.
type ArmOptions struct {
	// Seed seeds the deterministic plan builder.
	Seed int64
	// Liars is the number of distinct rendezvous nodes to arm (the f of
	// r ≥ 2f+1). Zero arms nothing.
	Liars int
	// Classes restricts the forgery classes drawn; empty means all four.
	Classes []ForgeClass
}

// forgeRec is one armed lie: when the node is queried for the record's
// port, it either stays silent or answers with the forged entry instead
// of consulting its (healthy) store.
type forgeRec struct {
	silent bool
	e      core.Entry
}

// forgeOp is one transport-agnostic arming action: install rec as
// node's answer for queries about port.
type forgeOp struct {
	node graph.NodeID
	port core.Port
	rec  forgeRec
}

// forgeTable is the armed state a transport's locate path consults:
// per lying node, the lie to tell per queried port. Tables are
// immutable once built; transports swap them atomically.
type forgeTable map[graph.NodeID]map[core.Port]forgeRec

// lieFor returns node's armed lie for port, if any.
func (ft forgeTable) lieFor(node graph.NodeID, port core.Port) (forgeRec, bool) {
	byPort, ok := ft[node]
	if !ok {
		return forgeRec{}, false
	}
	rec, ok := byPort[port]
	return rec, ok
}

// nodes returns the armed nodes in ascending order.
func (ft forgeTable) nodes() []graph.NodeID {
	out := make([]graph.NodeID, 0, len(ft))
	for v := range ft {
		out = append(out, v)
	}
	slices.Sort(out)
	return out
}

// buildForgeTable folds a plan into the lookup table the locate paths
// read. Later ops for the same (node, port) win, matching the order the
// plan builder emits.
func buildForgeTable(plan []forgeOp) forgeTable {
	if len(plan) == 0 {
		return nil
	}
	ft := make(forgeTable)
	for _, op := range plan {
		byPort := ft[op.node]
		if byPort == nil {
			byPort = make(map[core.Port]forgeRec, 4)
			ft[op.node] = byPort
		}
		byPort[op.port] = op.rec
	}
	return ft
}

// buildForgePlan derives a deterministic forgery plan from opts and the
// registration ground truth (regs sorted by instance id, exactly as
// buildCorruptPlan's callers prepare them). n is the graph size; rp is
// the replicated strategy when one is in play (nil under r=1), used to
// pick forged addresses that pass the family filter of the family the
// liar honestly serves — a lie the filter discards would be no lie at
// all. Each armed node draws one class and lies about every port whose
// posting it holds, so the liar is consistent: the same wrong answer to
// every client, which is the hardest case for voting (a flaky liar is
// outvoted even at q=2).
func buildForgePlan(opts ArmOptions, regs []corruptReg, n int, rp *strategy.Replicated) []forgeOp {
	if opts.Liars <= 0 || len(regs) == 0 || n <= 0 {
		return nil
	}
	classes := opts.Classes
	if len(classes) == 0 {
		classes = []ForgeClass{ForgeFabricate, ForgeStale, ForgeWrongPort, ForgeSilence}
	}
	// Eligible liars are the nodes holding at least one live posting —
	// the nodes whose answers clients actually consume.
	seen := make(map[graph.NodeID]bool)
	var eligible []graph.NodeID
	for _, r := range regs {
		for _, v := range r.targets {
			if !seen[v] {
				seen[v] = true
				eligible = append(eligible, v)
			}
		}
	}
	slices.Sort(eligible)
	rng := rand.New(rand.NewSource(opts.Seed))
	liars := opts.Liars
	if liars > len(eligible) {
		liars = len(eligible)
	}
	var plan []forgeOp
	for l := 0; l < liars; l++ {
		i := rng.Intn(len(eligible))
		v := eligible[i]
		eligible = append(eligible[:i], eligible[i+1:]...)
		class := classes[rng.Intn(len(classes))]
		for _, r := range regs {
			if !contains(r.targets, v) {
				continue
			}
			var rec forgeRec
			switch class {
			case ForgeSilence:
				rec.silent = true
			case ForgeFabricate:
				rec.e = core.Entry{
					Port: r.port, Addr: forgeAddr(rp, r.node, v, n),
					ServerID: forgeIDBase + r.id, Time: forgedTime, Active: true,
				}
			case ForgeStale:
				rec.e = core.Entry{
					Port: r.port, Addr: forgeAddr(rp, r.node, v, n),
					ServerID: r.id, Time: forgedTime, Active: true,
				}
			case ForgeWrongPort:
				rec.e = core.Entry{
					Port: wrongPort(regs, r.port), Addr: r.node,
					ServerID: r.id, Time: forgedTime, Active: true,
				}
			}
			plan = append(plan, forgeOp{node: v, port: r.port, rec: rec})
		}
	}
	return plan
}

// forgeAddr picks the address a fabricated or stale lie advertises: a
// node other than the honest home that still passes the family filter
// of the (first) family under which the liar holds home's posting —
// the filter is InPost(k, addr, liar), so the forged address must keep
// the liar inside the claimed origin's family-k posting set or every
// transport would silently discard the lie. Under r=1 there is no
// filter and any wrong address serves.
func forgeAddr(rp *strategy.Replicated, home, liar graph.NodeID, n int) graph.NodeID {
	if rp == nil || rp.Replicas() <= 1 {
		return graph.NodeID((int(home) + 1) % n)
	}
	k := -1
	for f := 0; f < rp.Replicas(); f++ {
		if rp.InPost(f, home, liar) {
			k = f
			break
		}
	}
	if k < 0 {
		return graph.NodeID((int(home) + 1) % n)
	}
	for d := 1; d < n; d++ {
		a := graph.NodeID((int(home) + d) % n)
		if rp.InPost(k, a, liar) {
			return a
		}
	}
	// Degenerate strategy where only home itself passes: lie about the
	// instance instead of the address (the fabricate class still forges
	// the id).
	return home
}

// wrongPort picks the port name a wrong-port echo answers with: another
// registered port when one exists (the realistic cross-wiring), or a
// synthesized name no server registered.
func wrongPort(regs []corruptReg, queried core.Port) core.Port {
	for _, o := range regs {
		if o.port != queried {
			return o.port
		}
	}
	return queried + "?echo"
}

// ByzantineTransport is implemented by replicated transports that
// support the answer-forging adversary and the attributed locates the
// cluster's voting mode needs.
type ByzantineTransport interface {
	ReplicatedTransport
	// Arm installs the deterministic forgery plan derived from opts on
	// the live rendezvous substrate and returns the number of lies
	// installed (one per armed node per port it holds). Arming replaces
	// any previous plan and bumps every hint generation — cached
	// addresses must re-verify against a newly hostile cluster.
	Arm(opts ArmOptions) (int, error)
	// Disarm removes every armed lie.
	Disarm() error
	// ArmedNodes returns the currently armed nodes in ascending order
	// (nil when disarmed).
	ArmedNodes() []graph.NodeID
	// LocateReplicaAt is LocateReplica with attribution: it additionally
	// returns the rendezvous node whose answer won the family's
	// freshest-entry reduction — the node a disagreeing vote quarantines.
	// The charge is identical to LocateReplica's.
	LocateReplicaAt(client graph.NodeID, port core.Port, replica int) (core.Entry, graph.NodeID, error)
	// Quarantine marks node suspect after a lost vote: every hint
	// generation is bumped so no cached address resolved through the
	// node survives. The node keeps serving — exclusion is the
	// cluster's job (it re-quarantines on the next disagreement until
	// anti-entropy re-verifies the node's rows).
	Quarantine(node graph.NodeID)
}
