package cluster

import (
	"errors"
	"fmt"
	"slices"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"matchmake/internal/core"
	"matchmake/internal/graph"
	"matchmake/internal/rendezvous"
	"matchmake/internal/topology"
)

// forgeClasses names every forgery class for subtest labels.
var forgeClasses = map[ForgeClass]string{
	ForgeFabricate: "fabricate",
	ForgeStale:     "stale",
	ForgeWrongPort: "wrong-port",
	ForgeSilence:   "silence",
}

// byzRegs is the registration script shared by the Byzantine tests:
// three servers whose home nodes land in three different thirds of a
// 36-node universe, so a 3-process net partition spreads them.
var byzRegs = []Registration{
	{Port: "alpha", Node: 7},
	{Port: "beta", Node: 19},
	{Port: "gamma", Node: 31},
}

// checkHonest asserts a surfaced entry matches registration ground
// truth — the client-side forgery oracle every harness shares.
func checkHonest(t *testing.T, stage string, client graph.NodeID, port core.Port, e core.Entry) {
	t.Helper()
	var home graph.NodeID = -1
	for _, r := range byzRegs {
		if r.Port == port {
			home = r.Node
		}
	}
	if e.Port != port || e.ServerID >= ForgedIDBase || e.Addr != home {
		t.Fatalf("%s: locate %q from %d surfaced a forged answer: %+v (home %d)", stage, port, client, e, home)
	}
}

// TestByzantineArmDeterminism pins the adversary's seeding discipline:
// equal ArmOptions over equal registrations arm identical node sets,
// re-arming replaces the previous plan wholesale, and Disarm clears it.
func TestByzantineArmDeterminism(t *testing.T) {
	n := 36
	rp := mkReplicated(t, n, 3)
	mk := func() *MemTransport {
		tr, err := NewReplicatedMemTransport(topology.Complete(n), rp, 0)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { tr.Close() })
		if _, err := tr.PostBatch(byzRegs); err != nil {
			t.Fatal(err)
		}
		return tr
	}
	a, b := mk(), mk()
	for _, seed := range []int64{1, 42, 1985} {
		opts := ArmOptions{Seed: seed, Liars: 2}
		na, err := a.Arm(opts)
		if err != nil {
			t.Fatal(err)
		}
		nb, err := b.Arm(opts)
		if err != nil {
			t.Fatal(err)
		}
		if na != nb || na == 0 {
			t.Fatalf("seed %d: armed %d lies on one transport, %d on the other", seed, na, nb)
		}
		la, lb := a.ArmedNodes(), b.ArmedNodes()
		if !slices.Equal(la, lb) || len(la) != 2 {
			t.Fatalf("seed %d: armed nodes %v vs %v, want 2 equal nodes", seed, la, lb)
		}
	}
	if err := a.Disarm(); err != nil {
		t.Fatal(err)
	}
	if nodes := a.ArmedNodes(); len(nodes) != 0 {
		t.Fatalf("armed nodes after Disarm = %v, want none", nodes)
	}
}

// TestByzantineAttackWithoutVoting is the attack demo the defence is
// measured against: with voting off, the replica fallthrough happily
// surfaces forged answers — at r=1 there is no family filter at all,
// and even at r=3 a liar answering for its own family wins whenever
// its family is asked first. The harness only demands the attack
// lands somewhere; the voting tests demand it never does.
func TestByzantineAttackWithoutVoting(t *testing.T) {
	n := 36
	for _, r := range []int{1, 3} {
		t.Run(fmt.Sprintf("r=%d", r), func(t *testing.T) {
			var tr *MemTransport
			var err error
			if r == 1 {
				tr, err = NewMemTransport(topology.Complete(n), rendezvous.Checkerboard(n), 0)
			} else {
				tr, err = NewReplicatedMemTransport(topology.Complete(n), mkReplicated(t, n, r), 0)
			}
			if err != nil {
				t.Fatal(err)
			}
			defer tr.Close()
			if _, err := tr.PostBatch(byzRegs); err != nil {
				t.Fatal(err)
			}
			if _, err := tr.Arm(ArmOptions{Seed: 7, Liars: 2, Classes: []ForgeClass{ForgeFabricate}}); err != nil {
				t.Fatal(err)
			}
			c := New(tr, Options{})
			defer c.Close()
			forged := 0
			for cl := 0; cl < n; cl++ {
				for _, reg := range byzRegs {
					e, err := c.Locate(graph.NodeID(cl), reg.Port)
					if err != nil {
						continue
					}
					if e.ServerID >= ForgedIDBase || e.Addr != reg.Node {
						forged++
					}
				}
			}
			if forged == 0 {
				t.Fatalf("r=%d without voting: no forged answer surfaced — the adversary is armed wrong", r)
			}
		})
	}
}

// TestByzantineVoteSimMemEquivalence is the tentpole equivalence gate:
// for every forgery class, the paper-exact simulator and the fast path
// armed with identical deterministic plans return identical voted
// answers — always the honest registration, never the lie — at
// identical pass charges per locate, and finish with identical suspect
// sets. Voting is only believable if the reference model and the
// production path price the adversary the same way.
func TestByzantineVoteSimMemEquivalence(t *testing.T) {
	const n, r = 36, 3
	g := topology.Complete(n)
	rp := mkReplicated(t, n, r)
	for class, name := range forgeClasses {
		t.Run(name, func(t *testing.T) {
			simT, err := NewReplicatedSimTransport(g, rp, repOpts)
			if err != nil {
				t.Fatal(err)
			}
			defer simT.Close()
			memT, err := NewReplicatedMemTransport(g, rp, 0)
			if err != nil {
				t.Fatal(err)
			}
			defer memT.Close()
			if _, err := simT.PostBatch(byzRegs); err != nil {
				t.Fatal(err)
			}
			simT.Network().Drain()
			if _, err := memT.PostBatch(byzRegs); err != nil {
				t.Fatal(err)
			}

			opts := ArmOptions{Seed: 1985, Liars: 1, Classes: []ForgeClass{class}}
			ns, err := simT.Arm(opts)
			if err != nil {
				t.Fatal(err)
			}
			nm, err := memT.Arm(opts)
			if err != nil {
				t.Fatal(err)
			}
			if ns != nm || !slices.Equal(simT.ArmedNodes(), memT.ArmedNodes()) {
				t.Fatalf("arm: sim %d lies on %v, mem %d on %v", ns, simT.ArmedNodes(), nm, memT.ArmedNodes())
			}

			simC := New(simT, Options{VoteQuorum: r})
			defer simC.Close()
			memC := New(memT, Options{VoteQuorum: r})
			defer memC.Close()
			for cl := 0; cl < n; cl++ {
				client := graph.NodeID(cl)
				for _, reg := range byzRegs {
					simBefore, memBefore := simT.Passes(), memT.Passes()
					e1, err1 := simC.Locate(client, reg.Port)
					simT.Network().Drain()
					e2, err2 := memC.Locate(client, reg.Port)
					if err1 != nil || err2 != nil {
						t.Fatalf("class %s: locate %q from %d: sim err=%v mem err=%v", name, reg.Port, client, err1, err2)
					}
					checkHonest(t, "sim", client, reg.Port, e1)
					checkHonest(t, "mem", client, reg.Port, e2)
					if e1.Addr != e2.Addr || e1.ServerID != e2.ServerID {
						t.Fatalf("class %s: locate %q from %d: sim %+v mem %+v", name, reg.Port, client, e1, e2)
					}
					if sc, mc := simT.Passes()-simBefore, memT.Passes()-memBefore; sc != mc {
						t.Fatalf("class %s: locate %q from %d: sim charged %d passes, mem %d", name, reg.Port, client, sc, mc)
					}
				}
			}
			if s, m := simC.SuspectedNodes(), memC.SuspectedNodes(); !slices.Equal(s, m) {
				t.Fatalf("class %s: suspect sets diverge: sim %v mem %v", name, s, m)
			}
			ms, mm := simC.Metrics(), memC.Metrics()
			if ms.VotedLocates != mm.VotedLocates || ms.VoteConflicts != mm.VoteConflicts {
				t.Fatalf("class %s: vote metrics diverge: sim voted=%d conflicts=%d, mem voted=%d conflicts=%d",
					name, ms.VotedLocates, ms.VoteConflicts, mm.VotedLocates, mm.VoteConflicts)
			}
		})
	}
}

// TestByzantineVoteNetEquivalence extends the equivalence gate to the
// socket transport: the same plans over a live 3-process cluster vote
// to the same answers, charges, and suspect sets as the fast path —
// including through the batch path, which votes per request.
func TestByzantineVoteNetEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	const n, r = 36, 3
	g := topology.Complete(n)
	rp := mkReplicated(t, n, r)
	addrs, _ := spawnNetCluster(t, n, 3)
	memT, err := NewReplicatedMemTransport(g, rp, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer memT.Close()
	netT, err := NewReplicatedNetTransport(g, rp, addrs, NetOptions{CallTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { netT.Close() })
	if _, err := memT.PostBatch(byzRegs); err != nil {
		t.Fatal(err)
	}
	if _, err := netT.PostBatch(byzRegs); err != nil {
		t.Fatal(err)
	}
	// One cluster per transport for the whole class sweep — Cluster.Close
	// also closes its transport, and re-Arm replaces the plan wholesale.
	memC := New(memT, Options{VoteQuorum: r})
	defer memC.Close()
	netC := New(netT, Options{VoteQuorum: r})
	defer netC.Close()

	for class, name := range forgeClasses {
		opts := ArmOptions{Seed: 64 + int64(class), Liars: 1, Classes: []ForgeClass{class}}
		nm, err := memT.Arm(opts)
		if err != nil {
			t.Fatal(err)
		}
		nn, err := netT.Arm(opts)
		if err != nil {
			t.Fatal(err)
		}
		if nm != nn || !slices.Equal(memT.ArmedNodes(), netT.ArmedNodes()) {
			t.Fatalf("class %s: mem armed %d on %v, net %d on %v", name, nm, memT.ArmedNodes(), nn, netT.ArmedNodes())
		}

		for cl := 0; cl < n; cl += 2 {
			client := graph.NodeID(cl)
			for _, reg := range byzRegs {
				memBefore, netBefore := memT.Passes(), netT.Passes()
				e1, err1 := memC.Locate(client, reg.Port)
				e2, err2 := netC.Locate(client, reg.Port)
				if err1 != nil || err2 != nil {
					t.Fatalf("class %s: locate %q from %d: mem err=%v net err=%v", name, reg.Port, client, err1, err2)
				}
				checkHonest(t, "mem", client, reg.Port, e1)
				checkHonest(t, "net", client, reg.Port, e2)
				if mc, nc := memT.Passes()-memBefore, netT.Passes()-netBefore; mc != nc {
					t.Fatalf("class %s: locate %q from %d: mem charged %d passes, net %d", name, reg.Port, client, mc, nc)
				}
			}
		}
		// Batch path: one voted locate per request, same answers.
		reqs := make([]LocateReq, 0, len(byzRegs)*3)
		for cl := 1; cl < n; cl += 13 {
			for _, reg := range byzRegs {
				reqs = append(reqs, LocateReq{Client: graph.NodeID(cl), Port: reg.Port})
			}
		}
		memRes := make([]LocateRes, len(reqs))
		netRes := make([]LocateRes, len(reqs))
		if err := memC.LocateBatch(reqs, memRes); err != nil {
			t.Fatal(err)
		}
		if err := netC.LocateBatch(reqs, netRes); err != nil {
			t.Fatal(err)
		}
		for i := range reqs {
			if memRes[i].Err != nil || netRes[i].Err != nil {
				t.Fatalf("class %s: batch slot %d: mem err=%v net err=%v", name, i, memRes[i].Err, netRes[i].Err)
			}
			checkHonest(t, "mem-batch", reqs[i].Client, reqs[i].Port, memRes[i].Entry)
			checkHonest(t, "net-batch", reqs[i].Client, reqs[i].Port, netRes[i].Entry)
		}
		if m, nn := memC.SuspectedNodes(), netC.SuspectedNodes(); !slices.Equal(m, nn) {
			t.Fatalf("class %s: suspect sets diverge after %s: mem %v net %v", name, name, m, nn)
		}
	}
}

// TestByzantineVoteKilledReplica drives voted locates while an honest
// node-shard process is kill -9'd mid-run: abstaining families may cost
// availability (a vote that cannot reach its majority fails closed) but
// must never cost integrity — no forged answer surfaces, before,
// during, or after the crash window.
func TestByzantineVoteKilledReplica(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	const n, r = 36, 3
	rp := mkReplicated(t, n, r)
	addrs, cmds := spawnNetCluster(t, n, 3)
	netT, err := NewReplicatedNetTransport(topology.Complete(n), rp, addrs, NetOptions{CallTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { netT.Close() })
	if _, err := netT.PostBatch(byzRegs); err != nil {
		t.Fatal(err)
	}
	if _, err := netT.Arm(ArmOptions{Seed: 3, Liars: 1, Classes: []ForgeClass{ForgeFabricate}}); err != nil {
		t.Fatal(err)
	}
	c := New(netT, Options{VoteQuorum: r})
	defer c.Close()

	// Loader goroutine voting continuously while the victim dies.
	var (
		stop     atomic.Bool
		forged   atomic.Int64
		loaderOK = make(chan error, 1)
	)
	go func() {
		defer close(loaderOK)
		for i := 0; !stop.Load(); i++ {
			client := graph.NodeID(i % n)
			reg := byzRegs[i%len(byzRegs)]
			e, err := c.Locate(client, reg.Port)
			if err != nil {
				if errors.Is(err, core.ErrNotFound) {
					continue // fail-closed vote during the crash window
				}
				loaderOK <- fmt.Errorf("locate %q from %d: %v", reg.Port, client, err)
				return
			}
			if e.Port != reg.Port || e.ServerID >= ForgedIDBase || e.Addr != reg.Node {
				forged.Add(1)
			}
		}
	}()

	time.Sleep(50 * time.Millisecond)
	victim := cmds[1]
	if err := victim.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	victim.Wait()
	time.Sleep(200 * time.Millisecond)
	stop.Store(true)
	if err := <-loaderOK; err != nil {
		t.Fatal(err)
	}
	if f := forged.Load(); f != 0 {
		t.Fatalf("%d forged answers surfaced across the crash window, want 0", f)
	}

	// With one process (and one family's answerers) gone for a third of
	// the pairs, votes still settle 2-of-3 wherever the liar is not the
	// surviving minority; a deterministic sweep must stay honest and
	// mostly available.
	ok, failed := 0, 0
	for cl := 0; cl < n; cl++ {
		for _, reg := range byzRegs {
			e, err := c.Locate(graph.NodeID(cl), reg.Port)
			if err != nil {
				if !errors.Is(err, core.ErrNotFound) {
					t.Fatalf("locate %q from %d: unexpected error class %v", reg.Port, cl, err)
				}
				failed++
				continue
			}
			checkHonest(t, "post-kill", graph.NodeID(cl), reg.Port, e)
			ok++
		}
	}
	if ok == 0 {
		t.Fatal("no voted locate succeeded after a single process kill")
	}
	t.Logf("post-kill sweep: %d honest answers, %d fail-closed votes", ok, failed)
}

// TestByzantineQuarantineLifecycle pins the rehabilitation story: a
// liar outvoted at quorum lands in the suspect set; a successful
// reconciliation round clears the quarantine (the node's stored state
// re-verified against registration ground truth); a still-armed liar is
// re-quarantined by the next vote it loses, while a disarmed one stays
// rehabilitated for good.
func TestByzantineQuarantineLifecycle(t *testing.T) {
	const n, r = 36, 3
	tr, err := NewReplicatedMemTransport(topology.Complete(n), mkReplicated(t, n, r), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if _, err := tr.PostBatch(byzRegs); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Arm(ArmOptions{Seed: 11, Liars: 1, Classes: []ForgeClass{ForgeFabricate}}); err != nil {
		t.Fatal(err)
	}
	liar := tr.ArmedNodes()[0]
	c := New(tr, Options{VoteQuorum: r})
	defer c.Close()

	sweep := func(stage string) {
		t.Helper()
		for cl := 0; cl < n; cl++ {
			for _, reg := range byzRegs {
				e, err := c.Locate(graph.NodeID(cl), reg.Port)
				if err != nil {
					t.Fatalf("%s: locate %q from %d: %v", stage, reg.Port, cl, err)
				}
				checkHonest(t, stage, graph.NodeID(cl), reg.Port, e)
			}
		}
	}

	sweep("armed")
	if s := c.SuspectedNodes(); !slices.Contains(s, liar) {
		t.Fatalf("armed liar %d not in suspect set %v after a full sweep", liar, s)
	}
	if m := c.Metrics(); m.SuspectedNodes == 0 || m.VoteConflicts == 0 {
		t.Fatalf("metrics missed the attack: %+v", m)
	}

	// Rehabilitation: the liar's stored state is healthy (it lies in
	// answers, not at rest), so reconciliation vouches for it and the
	// quarantine lifts.
	if _, err := c.ReconcileRound(); err != nil {
		t.Fatal(err)
	}
	if s := c.SuspectedNodes(); len(s) != 0 {
		t.Fatalf("suspect set %v after reconcile, want empty", s)
	}

	// Still armed: the next sweep re-quarantines it.
	sweep("re-armed")
	if s := c.SuspectedNodes(); !slices.Contains(s, liar) {
		t.Fatalf("persistent liar %d not re-quarantined: %v", liar, s)
	}

	// Disarmed and reconciled: rehabilitated for good.
	if err := tr.Disarm(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReconcileRound(); err != nil {
		t.Fatal(err)
	}
	sweep("disarmed")
	if s := c.SuspectedNodes(); len(s) != 0 {
		t.Fatalf("suspect set %v after disarm+reconcile+sweep, want empty", s)
	}
	if m := c.Metrics(); m.VoteQuorum != r {
		t.Fatalf("metrics quorum = %d, want %d", m.VoteQuorum, r)
	}
}

// TestByzantineVoteQuorumClamp checks the quorum clamps to the
// replication factor and that voting stays out of the way on
// non-Byzantine or unreplicated transports.
func TestByzantineVoteQuorumClamp(t *testing.T) {
	const n = 36
	tr, err := NewReplicatedMemTransport(topology.Complete(n), mkReplicated(t, n, 2), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if _, err := tr.PostBatch(byzRegs); err != nil {
		t.Fatal(err)
	}
	c := New(tr, Options{VoteQuorum: 99})
	defer c.Close()
	if _, err := c.Locate(3, "alpha"); err != nil {
		t.Fatal(err)
	}
	if m := c.Metrics(); m.VoteQuorum != 2 || m.VotedLocates != 1 {
		t.Fatalf("quorum %d voted %d, want clamp to 2 with 1 voted locate", m.VoteQuorum, m.VotedLocates)
	}

	// Unreplicated: VoteQuorum is inert, locates run the plain path.
	plain, err := NewMemTransport(topology.Complete(n), rendezvous.Checkerboard(n), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	if _, err := plain.PostBatch(byzRegs); err != nil {
		t.Fatal(err)
	}
	pc := New(plain, Options{VoteQuorum: 3})
	defer pc.Close()
	if _, err := pc.Locate(3, "alpha"); err != nil {
		t.Fatal(err)
	}
	if m := pc.Metrics(); m.VoteQuorum != 0 || m.VotedLocates != 0 {
		t.Fatalf("unreplicated transport voted: %+v", m)
	}
}
