package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"matchmake/internal/core"
	"matchmake/internal/graph"
	"matchmake/internal/rendezvous"
	"matchmake/internal/strategy"
	"matchmake/internal/topology"
)

// TestMain re-execs the test binary as a node-server worker when
// MM_NET_NODE is set: that is how the net equivalence tests get real
// OS processes (3-process loopback clusters) without shipping a
// separate binary. The worker prints "ADDR host:port" on stdout, then
// serves until SIGTERM (graceful drain) or death.
func TestMain(m *testing.M) {
	if os.Getenv("MM_NET_NODE") != "" {
		runTestNodeWorker()
		return
	}
	os.Exit(m.Run())
}

func runTestNodeWorker() {
	atoi := func(k string) int {
		v, err := strconv.Atoi(os.Getenv(k))
		if err != nil {
			fmt.Fprintf(os.Stderr, "worker: bad %s: %v\n", k, err)
			os.Exit(2)
		}
		return v
	}
	n, lo, hi := atoi("MM_NET_N"), atoi("MM_NET_LO"), atoi("MM_NET_HI")
	listen := os.Getenv("MM_NET_ADDR")
	if listen == "" {
		listen = "127.0.0.1:0"
	}
	if err := RunNodeWorker(n, lo, hi, listen, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "worker:", err)
		os.Exit(2)
	}
}

// spawnNetCluster boots a procs-process loopback cluster partitioning
// n nodes and returns the process addresses plus the commands (for
// fault injection). Processes are killed at test cleanup.
func spawnNetCluster(t *testing.T, n, procs int) ([]string, []*exec.Cmd) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	addrs := make([]string, procs)
	cmds := make([]*exec.Cmd, procs)
	for i := 0; i < procs; i++ {
		lo, hi := PartitionRange(n, procs, i)
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(),
			"MM_NET_NODE=1",
			fmt.Sprintf("MM_NET_N=%d", n),
			fmt.Sprintf("MM_NET_LO=%d", lo),
			fmt.Sprintf("MM_NET_HI=%d", hi),
		)
		cmd.Stderr = os.Stderr
		out, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			cmd.Process.Kill()
			cmd.Wait()
		})
		sc := bufio.NewScanner(out)
		if !sc.Scan() {
			t.Fatalf("worker %d: no ADDR line (err=%v)", i, sc.Err())
		}
		line := sc.Text()
		if !strings.HasPrefix(line, "ADDR ") {
			t.Fatalf("worker %d: unexpected line %q", i, line)
		}
		addrs[i] = strings.TrimPrefix(line, "ADDR ")
		cmds[i] = cmd
		go func() { // drain any further output so the child never blocks
			for sc.Scan() {
			}
		}()
	}
	return addrs, cmds
}

// netEqCase builds a mem/net transport pair over a freshly spawned
// 3-process cluster for one topology/strategy case.
func netEqCase(t *testing.T, tc eqCase, procs int) (*MemTransport, *NetTransport) {
	t.Helper()
	addrs, _ := spawnNetCluster(t, tc.g.N(), procs)
	memT, err := NewMemTransport(tc.g, tc.strat, 0)
	if err != nil {
		t.Fatal(err)
	}
	netT, err := NewNetTransport(tc.g, tc.strat, addrs, NetOptions{CallTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { netT.Close() })
	return memT, netT
}

// TestNetTransportEquivalence drives the same scripted workload through
// a 3-process socket cluster and the in-process fast path and demands
// identical results and identical message-pass accounting, operation by
// operation — registration, steady locates, migration, deregistration.
func TestNetTransportEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("process cluster: skipped in -short")
	}
	for _, tc := range equivalenceCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			memT, netT := netEqCase(t, tc, 3)
			n := tc.g.N()
			script := []struct {
				port   core.Port
				server graph.NodeID
			}{
				{"alpha", graph.NodeID(n / 3)},
				{"beta", graph.NodeID(n - 1)},
				{"gamma", 0},
			}
			memRefs := make(map[core.Port]ServerRef)
			netRefs := make(map[core.Port]ServerRef)
			for _, sc := range script {
				memBefore, netBefore := memT.Passes(), netT.Passes()
				r1, err := memT.Register(sc.port, sc.server)
				if err != nil {
					t.Fatal(err)
				}
				r2, err := netT.Register(sc.port, sc.server)
				if err != nil {
					t.Fatal(err)
				}
				memRefs[sc.port], netRefs[sc.port] = r1, r2
				if mc, nc := memT.Passes()-memBefore, netT.Passes()-netBefore; mc != nc {
					t.Fatalf("register %q: mem charged %d passes, net %d", sc.port, mc, nc)
				}
			}

			checkLocates := func(stage string) {
				t.Helper()
				for c := 0; c < n; c += 3 {
					client := graph.NodeID(c)
					for _, sc := range script {
						memBefore, netBefore := memT.Passes(), netT.Passes()
						e1, err1 := memT.Locate(client, sc.port)
						e2, err2 := netT.Locate(client, sc.port)
						if (err1 == nil) != (err2 == nil) {
							t.Fatalf("%s: locate %q from %d: mem err=%v net err=%v",
								stage, sc.port, client, err1, err2)
						}
						if err1 == nil && (e1.Addr != e2.Addr || e1.ServerID != e2.ServerID) {
							t.Fatalf("%s: locate %q from %d: mem %+v != net %+v",
								stage, sc.port, client, e1, e2)
						}
						if mc, nc := memT.Passes()-memBefore, netT.Passes()-netBefore; mc != nc {
							t.Fatalf("%s: locate %q from %d: mem charged %d passes, net %d",
								stage, sc.port, client, mc, nc)
						}
					}
				}
			}
			checkLocates("steady")

			to := graph.NodeID(n / 2)
			memBefore, netBefore := memT.Passes(), netT.Passes()
			if err := memRefs["alpha"].Migrate(to); err != nil {
				t.Fatal(err)
			}
			if err := netRefs["alpha"].Migrate(to); err != nil {
				t.Fatal(err)
			}
			if mc, nc := memT.Passes()-memBefore, netT.Passes()-netBefore; mc != nc {
				t.Fatalf("migrate: mem charged %d passes, net %d", mc, nc)
			}
			checkLocates("post-migrate")

			if err := memRefs["beta"].Deregister(); err != nil {
				t.Fatal(err)
			}
			if err := netRefs["beta"].Deregister(); err != nil {
				t.Fatal(err)
			}
			if _, err := netT.Locate(1, "beta"); !errors.Is(err, core.ErrNotFound) {
				t.Fatalf("net locate after deregister: %v; want ErrNotFound", err)
			}
			checkLocates("post-deregister")
		})
	}
}

// TestNetTransportEquivalenceProbe pins the probe path: identical
// outcomes and the exact 2×Dist (answered) / 1×Dist (crashed address)
// charges on both backends, including after migration and crash.
func TestNetTransportEquivalenceProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("process cluster: skipped in -short")
	}
	tc := equivalenceCases(t)[1] // grid-manhattan: nontrivial distances
	memT, netT := netEqCase(t, tc, 3)
	n := tc.g.N()
	server := graph.NodeID(n / 3)
	memRef, err := memT.Register("alpha", server)
	if err != nil {
		t.Fatal(err)
	}
	netRef, err := netT.Register("alpha", server)
	if err != nil {
		t.Fatal(err)
	}
	client := graph.NodeID(1)
	memE, err := memT.Locate(client, "alpha")
	if err != nil {
		t.Fatal(err)
	}
	netE, err := netT.Locate(client, "alpha")
	if err != nil {
		t.Fatal(err)
	}
	routing, err := graph.NewRouting(tc.g)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < n; c += 4 {
		prober := graph.NodeID(c)
		memBefore, netBefore := memT.Passes(), netT.Passes()
		me, merr := memT.Probe(prober, memE)
		ne, nerr := netT.Probe(prober, netE)
		if merr != nil || nerr != nil {
			t.Fatalf("probe from %d: mem err=%v net err=%v", c, merr, nerr)
		}
		if me.Addr != ne.Addr || me.ServerID != ne.ServerID {
			t.Fatalf("probe from %d: mem %+v != net %+v", c, me, ne)
		}
		want := int64(2 * routing.Dist(prober, server))
		if mc := memT.Passes() - memBefore; mc != want {
			t.Fatalf("probe from %d: mem charged %d, want %d", c, mc, want)
		}
		if nc := netT.Passes() - netBefore; nc != want {
			t.Fatalf("probe from %d: net charged %d, want %d", c, nc, want)
		}
	}

	// Stale probes after migration: negative answer, same 2×Dist charge.
	to := graph.NodeID(n - 1)
	if err := memRef.Migrate(to); err != nil {
		t.Fatal(err)
	}
	if err := netRef.Migrate(to); err != nil {
		t.Fatal(err)
	}
	memBefore, netBefore := memT.Passes(), netT.Passes()
	_, merr := memT.Probe(client, memE)
	_, nerr := netT.Probe(client, netE)
	if !errors.Is(merr, core.ErrNotFound) || !errors.Is(nerr, core.ErrNotFound) {
		t.Fatalf("stale probe: mem err=%v net err=%v; want ErrNotFound", merr, nerr)
	}
	want := int64(2 * routing.Dist(client, server))
	if mc, nc := memT.Passes()-memBefore, netT.Passes()-netBefore; mc != want || nc != want {
		t.Fatalf("stale probe: mem charged %d, net %d, want %d", mc, nc, want)
	}

	// A crashed address swallows the request: 1×Dist on both.
	if err := memT.Crash(to); err != nil {
		t.Fatal(err)
	}
	if err := netT.Crash(to); err != nil {
		t.Fatal(err)
	}
	// Cached postings at live rendezvous nodes still answer with the
	// (now stale) address — detecting the crash is the probe's job.
	staleMem, err1 := memT.Locate(client, "alpha")
	staleNet, err2 := netT.Locate(client, "alpha")
	if (err1 == nil) != (err2 == nil) || (err1 == nil && staleMem.Addr != staleNet.Addr) {
		t.Fatalf("post-crash locate: mem %+v/%v net %+v/%v", staleMem, err1, staleNet, err2)
	}
	memE.Addr, netE.Addr = to, to
	memBefore, netBefore = memT.Passes(), netT.Passes()
	_, merr = memT.Probe(client, memE)
	_, nerr = netT.Probe(client, netE)
	if merr == nil || nerr == nil {
		t.Fatalf("crashed probe: mem err=%v net err=%v; want errors", merr, nerr)
	}
	want = int64(routing.Dist(client, to))
	if mc, nc := memT.Passes()-memBefore, netT.Passes()-netBefore; mc != want || nc != want {
		t.Fatalf("crashed probe: mem charged %d, net %d, want %d", mc, nc, want)
	}
}

// TestNetTransportEquivalenceBatch pushes identical PostBatch and
// LocateBatch traffic through both backends: per-request answers and
// total charges must match, as must the batched-vs-sequential totals.
func TestNetTransportEquivalenceBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("process cluster: skipped in -short")
	}
	for _, tc := range equivalenceCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			memT, netT := netEqCase(t, tc, 3)
			n := tc.g.N()
			regs := []Registration{
				{Port: "alpha", Node: graph.NodeID(n / 3)},
				{Port: "beta", Node: graph.NodeID(n - 1)},
			}
			memT.ResetPasses()
			netT.ResetPasses()
			if _, err := memT.PostBatch(regs); err != nil {
				t.Fatal(err)
			}
			if _, err := netT.PostBatch(regs); err != nil {
				t.Fatal(err)
			}
			if memT.Passes() != netT.Passes() {
				t.Fatalf("PostBatch: mem charged %d passes, net %d", memT.Passes(), netT.Passes())
			}

			var reqs []LocateReq
			for c := 0; c < n; c += 5 {
				reqs = append(reqs,
					LocateReq{Client: graph.NodeID(c), Port: "alpha"},
					LocateReq{Client: graph.NodeID(c), Port: "beta"},
					LocateReq{Client: graph.NodeID(c), Port: "nope"})
			}
			memRes := make([]LocateRes, len(reqs))
			netRes := make([]LocateRes, len(reqs))
			memT.ResetPasses()
			netT.ResetPasses()
			memT.LocateBatch(reqs, memRes)
			netT.LocateBatch(reqs, netRes)
			if memT.Passes() != netT.Passes() {
				t.Fatalf("LocateBatch: mem charged %d passes, net %d", memT.Passes(), netT.Passes())
			}
			for i := range reqs {
				if (memRes[i].Err == nil) != (netRes[i].Err == nil) {
					t.Fatalf("req %d (%+v): mem err=%v net err=%v", i, reqs[i], memRes[i].Err, netRes[i].Err)
				}
				if memRes[i].Err == nil &&
					(memRes[i].Entry.Addr != netRes[i].Entry.Addr ||
						memRes[i].Entry.ServerID != netRes[i].Entry.ServerID) {
					t.Fatalf("req %d (%+v): mem %+v != net %+v", i, reqs[i], memRes[i].Entry, netRes[i].Entry)
				}
			}
		})
	}
}

// TestNetTransportCrashEquivalence pins the endpoint crash model: after
// crashing a rendezvous node on both backends, locate answers and
// charges still agree (the crashed node's cache is lost and silent).
func TestNetTransportCrashEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("process cluster: skipped in -short")
	}
	tc := equivalenceCases(t)[0]
	memT, netT := netEqCase(t, tc, 3)
	n := tc.g.N()
	for _, port := range []core.Port{"alpha", "beta"} {
		node := graph.NodeID(int(port[0]) % n)
		if _, err := memT.Register(port, node); err != nil {
			t.Fatal(err)
		}
		if _, err := netT.Register(port, node); err != nil {
			t.Fatal(err)
		}
	}
	victim := graph.NodeID(2)
	if err := memT.Crash(victim); err != nil {
		t.Fatal(err)
	}
	if err := netT.Crash(victim); err != nil {
		t.Fatal(err)
	}
	for c := 0; c < n; c += 2 {
		client := graph.NodeID(c)
		for _, port := range []core.Port{"alpha", "beta"} {
			memBefore, netBefore := memT.Passes(), netT.Passes()
			e1, err1 := memT.Locate(client, port)
			e2, err2 := netT.Locate(client, port)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("locate %q from %d after crash: mem err=%v net err=%v", port, client, err1, err2)
			}
			if err1 == nil && e1.Addr != e2.Addr {
				t.Fatalf("locate %q from %d after crash: mem %+v != net %+v", port, client, e1, e2)
			}
			if mc, nc := memT.Passes()-memBefore, netT.Passes()-netBefore; mc != nc {
				t.Fatalf("locate %q from %d after crash: mem charged %d, net %d", port, client, mc, nc)
			}
		}
	}
	// And after restore + re-register, both recover identically.
	if err := memT.Restore(victim); err != nil {
		t.Fatal(err)
	}
	if err := netT.Restore(victim); err != nil {
		t.Fatal(err)
	}
	if _, err := memT.Register("gamma", victim); err != nil {
		t.Fatal(err)
	}
	if _, err := netT.Register("gamma", victim); err != nil {
		t.Fatal(err)
	}
	e1, err1 := memT.Locate(0, "gamma")
	e2, err2 := netT.Locate(0, "gamma")
	if err1 != nil || err2 != nil || e1.Addr != e2.Addr {
		t.Fatalf("post-restore locate: mem %+v/%v net %+v/%v", e1, err1, e2, err2)
	}
}

// TestNetTransportHintedCluster runs the full serving stack (hint
// cache, coalescing, metrics) over the socket transport and checks
// hinted answers equal unhinted ones, with probe traffic visibly
// cheaper than floods.
func TestNetTransportHintedCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("process cluster: skipped in -short")
	}
	tc := equivalenceCases(t)[0]
	addrs, _ := spawnNetCluster(t, tc.g.N(), 3)
	netT, err := NewNetTransport(tc.g, tc.strat, addrs, NetOptions{CallTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	plainT, err := NewMemTransport(tc.g, tc.strat, 0)
	if err != nil {
		t.Fatal(err)
	}
	c := New(netT, Options{Hints: true})
	defer c.Close()
	n := tc.g.N()
	if _, err := c.Register("alpha", graph.NodeID(n/2)); err != nil {
		t.Fatal(err)
	}
	if _, err := plainT.Register("alpha", graph.NodeID(n/2)); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		for cl := 0; cl < n; cl += 4 {
			hinted, err := c.Locate(graph.NodeID(cl), "alpha")
			if err != nil {
				t.Fatal(err)
			}
			plain, err := plainT.Locate(graph.NodeID(cl), "alpha")
			if err != nil {
				t.Fatal(err)
			}
			if hinted.Addr != plain.Addr || hinted.ServerID != plain.ServerID {
				t.Fatalf("round %d client %d: hinted %+v != plain %+v", round, cl, hinted, plain)
			}
		}
	}
	m := c.Metrics()
	if m.HintHits == 0 {
		t.Fatalf("no hint hits over the net transport: %+v", m)
	}
}

// TestNetTransportKillDash9 is the fault-injection test: kill -9 one
// node process mid-run and verify (a) the hint generations bump so
// cached addresses stop being probed into the void, (b) locates for
// services on surviving processes keep answering, and (c) weighted
// hot-port promotion still converges.
func TestNetTransportKillDash9(t *testing.T) {
	if testing.Short() {
		t.Skip("process cluster: skipped in -short")
	}
	g := topology.Complete(36)
	base := rendezvous.Checkerboard(36)
	hot, err := strategy.PostHeavy(36, strategy.AlphaQuerySize(36, 16))
	if err != nil {
		t.Fatal(err)
	}
	w, err := strategy.NewWeighted(base, hot)
	if err != nil {
		t.Fatal(err)
	}
	addrs, cmds := spawnNetCluster(t, 36, 3)
	netT, err := NewWeightedNetTransport(g, w, addrs, NetOptions{CallTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer netT.Close()

	// Two services: one whose server node lives on the doomed middle
	// process ([12,24)), one on the surviving first process.
	if _, err := netT.Register("doomed", 15); err != nil {
		t.Fatal(err)
	}
	if _, err := netT.Register("alive", 3); err != nil {
		t.Fatal(err)
	}
	if _, err := netT.Locate(0, "doomed"); err != nil {
		t.Fatal(err)
	}
	if _, err := netT.Locate(0, "alive"); err != nil {
		t.Fatal(err)
	}

	genBefore := netT.Gen("alive")
	if err := cmds[1].Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	cmds[1].Wait()

	// Probing into the dead process fails without an answer and bumps
	// every generation on first observation.
	e := core.Entry{Port: "doomed", Addr: 15, ServerID: 1, Time: 1, Active: true}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := netT.Probe(0, e); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("probe into killed process kept succeeding")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if netT.Gen("alive") == genBefore {
		t.Fatalf("hint generation did not bump after process death")
	}

	// Checkerboard spreads every port's postings across all three
	// processes, so services with live rendezvous nodes keep resolving.
	if _, err := netT.Locate(0, "alive"); err != nil {
		t.Fatalf("locate alive after kill -9: %v", err)
	}

	// The full serving stack keeps working over the degraded cluster,
	// and weighted promotion still converges: promote "alive" and watch
	// the hot split serve it.
	if err := netT.SetHotPorts([]core.Port{"alive"}); err != nil {
		t.Logf("SetHotPorts over degraded cluster: %v (dead-process reposts are silence)", err)
	}
	hotPorts := netT.HotPorts()
	if len(hotPorts) != 1 || hotPorts[0] != "alive" {
		t.Fatalf("hot classification did not converge: %v", hotPorts)
	}
	before := netT.Passes()
	if _, err := netT.Locate(0, "alive"); err != nil {
		t.Fatalf("hot locate after kill -9: %v", err)
	}
	hotCost := netT.Passes() - before
	if hotCost <= 0 {
		t.Fatalf("hot locate charged %d passes", hotCost)
	}

	// A new registration on surviving processes resolves immediately —
	// the cluster converged rather than wedging on the dead member.
	if _, err := netT.Register("fresh", 30); err != nil {
		t.Fatal(err)
	}
	if _, err := netT.Locate(4, "fresh"); err != nil {
		t.Fatalf("locate fresh service after kill -9: %v", err)
	}
}

// TestNetReplicatedKillEquivalence is the replicated fault-injection
// gate: a 3-process r=2 cluster loses one whole node-shard process to
// kill -9 mid-run, and the socket transport must keep matching the
// in-process fast path — answers and exact pass charges — on the
// failure path, first with the process death fail-silent on the wire
// (mem models it with crash flags), then with the same crash flags
// applied to both. With r=2, every locate from a live client must still
// succeed on both backends.
func TestNetReplicatedKillEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("process cluster: skipped in -short")
	}
	n, procs := 36, 3
	g := topology.Complete(n)
	rp, err := strategy.NewReplicated(rendezvous.Checkerboard(n), 2)
	if err != nil {
		t.Fatal(err)
	}
	addrs, cmds := spawnNetCluster(t, n, procs)
	memT, err := NewReplicatedMemTransport(g, rp, 0)
	if err != nil {
		t.Fatal(err)
	}
	netT, err := NewReplicatedNetTransport(g, rp, addrs, NetOptions{CallTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { netT.Close() })

	ports := map[core.Port]graph.NodeID{"alpha": 7, "beta": 29}
	for port, node := range ports {
		memBefore, netBefore := memT.Passes(), netT.Passes()
		if _, err := memT.Register(port, node); err != nil {
			t.Fatal(err)
		}
		if _, err := netT.Register(port, node); err != nil {
			t.Fatal(err)
		}
		if mc, nc := memT.Passes()-memBefore, netT.Passes()-netBefore; mc != nc {
			t.Fatalf("register %q: mem charged %d (union post), net %d", port, mc, nc)
		}
	}

	// Kill the middle process: nodes [12, 24) go dark.
	lo, hi := PartitionRange(n, procs, 1)
	if err := cmds[1].Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	cmds[1].Wait()
	// Wait until the transport has observed the death (a probe into the
	// dead range fails without an answer).
	probe := core.Entry{Port: "alpha", Addr: graph.NodeID(lo + 3), ServerID: 99, Time: 1, Active: true}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := netT.Probe(0, probe); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("probe into killed process kept succeeding")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Phase A — fail-silent: the wire knows nothing of the crash flags;
	// the dead process's node range is silence. Mem models the same
	// state with crash flags on that range. Answers and charges from
	// every live client must match, and with r=2 every one succeeds.
	for v := lo; v < hi; v++ {
		if err := memT.Crash(graph.NodeID(v)); err != nil {
			t.Fatal(err)
		}
	}
	memT.ResetPasses()
	netT.ResetPasses()
	sweep := func(stage string, skipDead bool) {
		t.Helper()
		for c := 0; c < n; c++ {
			client := graph.NodeID(c)
			if skipDead && c >= lo && c < hi {
				continue
			}
			for port := range ports {
				memBefore, netBefore := memT.Passes(), netT.Passes()
				e1, err1 := memT.Locate(client, port)
				e2, err2 := netT.Locate(client, port)
				if (err1 == nil) != (err2 == nil) {
					t.Fatalf("%s: locate %q from %d: mem err=%v net err=%v", stage, port, client, err1, err2)
				}
				if err1 == nil && (e1.Addr != e2.Addr || e1.ServerID != e2.ServerID) {
					t.Fatalf("%s: locate %q from %d: mem %+v != net %+v", stage, port, client, e1, e2)
				}
				if err1 != nil && errors.Is(err1, core.ErrNotFound) {
					t.Fatalf("%s: locate %q from %d failed despite r=2: %v", stage, port, client, err1)
				}
				if mc, nc := memT.Passes()-memBefore, netT.Passes()-netBefore; mc != nc {
					t.Fatalf("%s: locate %q from %d: mem charged %d passes, net %d", stage, port, client, mc, nc)
				}
			}
		}
	}
	sweep("fail-silent", true)

	// Phase B — the same crash flags applied to both backends: crashed
	// clients error identically, every live locate still succeeds, and
	// the batched path agrees too.
	for v := lo; v < hi; v++ {
		if err := netT.Crash(graph.NodeID(v)); err != nil {
			t.Fatal(err)
		}
	}
	memT.ResetPasses()
	netT.ResetPasses()
	sweep("crash-flagged", false)

	var reqs []LocateReq
	for c := 0; c < n; c += 2 {
		reqs = append(reqs,
			LocateReq{Client: graph.NodeID(c), Port: "alpha"},
			LocateReq{Client: graph.NodeID(c), Port: "nope"})
	}
	memRes := make([]LocateRes, len(reqs))
	netRes := make([]LocateRes, len(reqs))
	memT.ResetPasses()
	netT.ResetPasses()
	memT.LocateBatch(reqs, memRes)
	netT.LocateBatch(reqs, netRes)
	if memT.Passes() != netT.Passes() {
		t.Fatalf("failure-path LocateBatch: mem charged %d passes, net %d", memT.Passes(), netT.Passes())
	}
	for i := range reqs {
		if (memRes[i].Err == nil) != (netRes[i].Err == nil) {
			t.Fatalf("req %d (%+v): mem err=%v net err=%v", i, reqs[i], memRes[i].Err, netRes[i].Err)
		}
		if memRes[i].Err == nil && memRes[i].Entry.Addr != netRes[i].Entry.Addr {
			t.Fatalf("req %d (%+v): mem %+v != net %+v", i, reqs[i], memRes[i].Entry, netRes[i].Entry)
		}
	}
}

// TestNetReplicatedRepairLoop covers the background re-post repair
// loop: kill -9 a node-shard process, restart a fresh worker on the
// same partition, and watch the repair loop detect the recovery,
// re-register the liveness records and re-post the postings the crash
// destroyed — restoring full replication (and probe service) without
// any client-driven re-registration.
func TestNetReplicatedRepairLoop(t *testing.T) {
	if testing.Short() {
		t.Skip("process cluster: skipped in -short")
	}
	n, procs := 36, 3
	g := topology.Complete(n)
	rp, err := strategy.NewReplicated(rendezvous.Checkerboard(n), 2)
	if err != nil {
		t.Fatal(err)
	}
	addrs, cmds := spawnNetCluster(t, n, procs)
	netT, err := NewReplicatedNetTransport(g, rp, addrs, NetOptions{
		CallTimeout:    10 * time.Second,
		RepairInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { netT.Close() })

	// A server homed on the middle process: its liveness record and its
	// postings at rendezvous nodes in [12,24) die with the process.
	if _, err := netT.Register("svc", 15); err != nil {
		t.Fatal(err)
	}
	e, err := netT.Locate(0, "svc")
	if err != nil || e.Addr != 15 {
		t.Fatalf("pre-kill locate: %+v, %v", e, err)
	}
	if err := cmds[1].Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	cmds[1].Wait()

	// Locates survive the outage via replica fallthrough.
	if _, err := netT.Locate(0, "svc"); err != nil {
		t.Fatalf("locate during outage: %v", err)
	}

	// Restart a worker on the same partition and address.
	lo, hi := PartitionRange(n, procs, 1)
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	var restarted *exec.Cmd
	deadline := time.Now().Add(10 * time.Second)
	for {
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(),
			"MM_NET_NODE=1",
			fmt.Sprintf("MM_NET_N=%d", n),
			fmt.Sprintf("MM_NET_LO=%d", lo),
			fmt.Sprintf("MM_NET_HI=%d", hi),
			"MM_NET_ADDR="+addrs[1],
		)
		cmd.Stderr = os.Stderr
		out, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(out)
		if sc.Scan() && strings.HasPrefix(sc.Text(), "ADDR ") {
			go func() {
				for sc.Scan() {
				}
			}()
			restarted = cmd
			break
		}
		cmd.Process.Kill()
		cmd.Wait()
		if time.Now().After(deadline) {
			t.Fatal("could not rebind worker to the old address")
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Cleanup(func() {
		restarted.Process.Kill()
		restarted.Wait()
	})

	// The repair loop must re-register the liveness record (probes into
	// the recovered range answer positively again) and re-post, so the
	// replica-0 rendezvous in the recovered range serves depth-0 floods
	// again.
	deadline = time.Now().Add(10 * time.Second)
	for {
		if _, err := netT.Probe(0, e); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("repair loop never restored the liveness record")
		}
		time.Sleep(25 * time.Millisecond)
	}
	rv := rendezvous.Intersect(rp.Base().Post(15), rp.Base().Query(2))
	found := false
	for _, v := range rv {
		if int(v) >= lo && int(v) < hi {
			found = true
		}
	}
	if !found {
		t.Fatalf("test geometry broke: rendezvous %v not in recovered range [%d,%d)", rv, lo, hi)
	}
	if e2, err := netT.Locate(2, "svc"); err != nil || e2.Addr != 15 {
		t.Fatalf("post-repair locate: %+v, %v", e2, err)
	}
}

// TestNodeServerDrain covers the graceful-drain path used by mmnode's
// SIGTERM handling: a SIGTERM'd worker finishes serving and exits 0.
func TestNodeServerDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("process cluster: skipped in -short")
	}
	g := topology.Complete(12)
	addrs, cmds := spawnNetCluster(t, 12, 2)
	netT, err := NewNetTransport(g, rendezvous.Checkerboard(12), addrs, NetOptions{CallTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer netT.Close()
	if _, err := netT.Register("svc", 1); err != nil {
		t.Fatal(err)
	}
	if err := cmds[0].Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmds[0].Wait(); err != nil {
		t.Fatalf("SIGTERM'd worker exited non-zero: %v", err)
	}
}

// TestNetTransportWeightedEquivalence pins the weighted mode across
// the process boundary: promotion, hot locates, demotion and the
// sticky union-posting rule must give identical answers and identical
// pass charges on the weighted mem and net transports.
func TestNetTransportWeightedEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("process cluster: skipped in -short")
	}
	g := topology.Complete(36)
	base := rendezvous.Checkerboard(36)
	mkWeighted := func() *strategy.Weighted {
		hot, err := strategy.PostHeavy(36, strategy.AlphaQuerySize(36, 16))
		if err != nil {
			t.Fatal(err)
		}
		w, err := strategy.NewWeighted(base, hot)
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	addrs, _ := spawnNetCluster(t, 36, 3)
	memT, err := NewWeightedMemTransport(g, mkWeighted(), 0)
	if err != nil {
		t.Fatal(err)
	}
	netT, err := NewWeightedNetTransport(g, mkWeighted(), addrs, NetOptions{CallTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { netT.Close() })

	for _, reg := range []struct {
		port core.Port
		node graph.NodeID
	}{{"hot", 7}, {"cold", 29}} {
		memBefore, netBefore := memT.Passes(), netT.Passes()
		if _, err := memT.Register(reg.port, reg.node); err != nil {
			t.Fatal(err)
		}
		if _, err := netT.Register(reg.port, reg.node); err != nil {
			t.Fatal(err)
		}
		if mc, nc := memT.Passes()-memBefore, netT.Passes()-netBefore; mc != nc {
			t.Fatalf("register %q: mem charged %d, net %d", reg.port, mc, nc)
		}
	}

	checkStage := func(stage string) {
		t.Helper()
		for c := 0; c < 36; c += 5 {
			for _, port := range []core.Port{"hot", "cold"} {
				memBefore, netBefore := memT.Passes(), netT.Passes()
				e1, err1 := memT.Locate(graph.NodeID(c), port)
				e2, err2 := netT.Locate(graph.NodeID(c), port)
				if (err1 == nil) != (err2 == nil) || (err1 == nil && e1.Addr != e2.Addr) {
					t.Fatalf("%s: locate %q from %d: mem %+v/%v net %+v/%v", stage, port, c, e1, err1, e2, err2)
				}
				if mc, nc := memT.Passes()-memBefore, netT.Passes()-netBefore; mc != nc {
					t.Fatalf("%s: locate %q from %d: mem charged %d, net %d", stage, port, c, mc, nc)
				}
			}
		}
	}
	checkStage("cold")

	// Promote "hot" on both: union reposts then hot-split queries, at
	// identical charges.
	memBefore, netBefore := memT.Passes(), netT.Passes()
	if err := memT.SetHotPorts([]core.Port{"hot"}); err != nil {
		t.Fatal(err)
	}
	if err := netT.SetHotPorts([]core.Port{"hot"}); err != nil {
		t.Fatal(err)
	}
	if mc, nc := memT.Passes()-memBefore, netT.Passes()-netBefore; mc != nc {
		t.Fatalf("promotion: mem charged %d, net %d", mc, nc)
	}
	checkStage("promoted")

	// Demote: union ⊇ base keeps the port resolvable immediately.
	if err := memT.SetHotPorts(nil); err != nil {
		t.Fatal(err)
	}
	if err := netT.SetHotPorts(nil); err != nil {
		t.Fatal(err)
	}
	checkStage("demoted")
}
