package cluster

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"matchmake/internal/core"
	"matchmake/internal/graph"
	"matchmake/internal/rendezvous"
	"matchmake/internal/sim"
	"matchmake/internal/strategy"
)

// SimTransport runs the existing internal/core engine over the
// internal/sim store-and-forward network: every posting, query and reply
// is a real simulated message routed hop by hop, and Passes reports the
// network's exact hop counter — the paper's cost measure with no
// approximation. It is the reference backend the fast path is checked
// against, and the right one whenever fidelity beats throughput
// (fault-injection studies, per-message traces, §2.4 robustness work).
//
// The transport owns its network and enables the simulator's inline
// handler mode: the name-server handlers never block, so skipping the
// per-delivery goroutine is safe and roughly doubles serving throughput.
type SimTransport struct {
	net    *sim.Network
	sys    *core.System
	gens   *genIndex
	rp     *strategy.Replicated // nil unless replicated
	events eventSink

	// elastic is the epoch-versioned membership state (nil on
	// transports built without it — see NewElasticSimTransport). The
	// simulator is the paper-exact reference of the resize protocol:
	// the engine strategy is swapped at each phase (union posting sets
	// during the dual-epoch migration), the migration delta re-posts
	// through core.Server.RepostVia as real multicasts, old-epoch
	// floods travel as explicit-target LocateVia floods, and epoch
	// garbage collection expires entries in place via
	// core.System.ExpireEntry.
	elastic     atomic.Pointer[simElastic]
	resizeMu    sync.Mutex
	migrated    atomic.Int64
	dualLocates atomic.Int64

	// recon holds the anti-entropy counters and the background
	// reconciliation loop (see antientropy.go / antientropy_sim.go).
	recon reconciler

	// forge is the armed Byzantine lie table (nil when disarmed),
	// consulted by the engine forger hook installed at construction —
	// see byzantine.go / byzantine_sim.go.
	forge atomic.Pointer[forgeTable]
}

// simElastic is one phase of the simulator's elastic membership: the
// serving epoch and, during a dual-epoch migration, the retiring epoch
// plus the minimal-movement remap between them.
type simElastic struct {
	cur  *strategy.Epoch
	prev *strategy.Epoch
	rm   *strategy.Remap
}

// replicas returns the dual-epoch family count of the phase.
func (es *simElastic) replicas() int {
	r := es.cur.Replicas()
	if es.prev != nil {
		r += es.prev.Replicas()
	}
	return r
}

// resolve maps a dual-epoch family index to its epoch and local family.
func (es *simElastic) resolve(k int) (*strategy.Epoch, int, bool) {
	r := es.cur.Replicas()
	if k >= 0 && k < r {
		return es.cur, k, true
	}
	if es.prev != nil && k >= r && k < r+es.prev.Replicas() {
		return es.prev, k - r, true
	}
	return nil, 0, false
}

var _ Transport = (*SimTransport)(nil)
var _ ReplicatedTransport = (*SimTransport)(nil)
var _ ElasticTransport = (*SimTransport)(nil)

// NewSimTransport builds a fresh simulator network over g and installs
// the core engine with strat. opts tune the engine's locate timeout and
// collect window; the zero value picks the engine defaults.
func NewSimTransport(g *graph.Graph, strat rendezvous.Strategy, opts core.Options) (*SimTransport, error) {
	return newSimTransport(g, rendezvous.Precompute(strat), nil, opts)
}

// NewReplicatedSimTransport builds the paper-exact reference for the
// r-fold replicated rendezvous mode: the engine posts over the union of
// every replica family's posting sets (one real multicast), and a
// locate floods replica 0's query set, falling through family by family
// — each attempt a real simulated flood with its hops counted by the
// network, so the fast paths' fallthrough charges are checked against
// the genuine article. Note a fallthrough attempt on the simulator
// costs a full locate timeout before the next family is tried; keep
// opts.LocateTimeout short in fault studies.
func NewReplicatedSimTransport(g *graph.Graph, rp *strategy.Replicated, opts core.Options) (*SimTransport, error) {
	if rp == nil {
		return nil, fmt.Errorf("cluster: replicated transport needs a strategy.Replicated")
	}
	// The engine's own strategy: union posts, replica-0 queries. The
	// higher replica floods go through LocateVia with explicit targets.
	comp := rendezvous.Precompute(rendezvous.Funcs{
		StrategyName: rp.Name(),
		Universe:     rp.N(),
		PostFunc:     rp.UnionPost,
		QueryFunc:    rp.Base().Query,
	})
	t, err := newSimTransport(g, comp, rp, opts)
	if err != nil {
		return nil, err
	}
	if rp.Replicas() > 1 {
		// Family-scope the rendezvous answers: a node only answers a
		// family-k query with postings it holds as a member of Pₖ of the
		// posting's origin, which keeps the replica families independent
		// channels even where their node sets overlap.
		t.sys.SetReplicaFilter(func(self graph.NodeID, family int, e core.Entry) bool {
			return rp.InPost(family, e.Addr, self)
		})
	}
	return t, nil
}

// NewElasticSimTransport builds the paper-exact reference of the
// elastic membership protocol: the engine initially serves initial's
// active node set, and Resize/FinishResize drive the dual-epoch
// migration with every step a real simulated event — delta re-posts as
// multicasts with network-counted hops, old-epoch floods as
// explicit-target queries, and epoch retirement as local cache expiry.
// Replication comes from the epoch itself.
func NewElasticSimTransport(g *graph.Graph, initial *strategy.Epoch, opts core.Options) (*SimTransport, error) {
	if initial == nil {
		return nil, fmt.Errorf("cluster: elastic transport needs an initial epoch")
	}
	if initial.Universe() != g.N() {
		return nil, fmt.Errorf("cluster: epoch %d universe %d != graph size %d", initial.Seq(), initial.Universe(), g.N())
	}
	t, err := newSimTransport(g, epochEngineStrategy(initial, nil, g.N()), nil, opts)
	if err != nil {
		return nil, err
	}
	es := &simElastic{cur: initial}
	t.elastic.Store(es)
	t.installEpochFilter(es)
	return t, nil
}

// epochEngineStrategy builds the engine strategy of one elastic phase:
// posting sets are the serving epoch's (widened to both epochs' union
// while prev is live, so lifecycle postings — especially tombstones —
// cover every node either epoch's floods can read), and the default
// query set is the serving epoch's family 0.
func epochEngineStrategy(cur, prev *strategy.Epoch, universe int) rendezvous.Strategy {
	post := cur.PostSet
	name := cur.Name()
	if prev != nil {
		name = fmt.Sprintf("%s+%s", cur.Name(), prev.Name())
		post = func(i graph.NodeID) []graph.NodeID { return unionIDs(cur.PostSet(i), prev.PostSet(i)) }
	}
	return rendezvous.Precompute(rendezvous.Funcs{
		StrategyName: name,
		Universe:     universe,
		PostFunc:     post,
		QueryFunc:    func(j graph.NodeID) []graph.NodeID { return cur.QuerySet(j, 0) },
	})
}

// installEpochFilter scopes rendezvous answers to the dual-epoch family
// index space of phase es: a node only answers a family-k flood with
// entries whose origin posts at it as part of that family of the
// resolved epoch, keeping the two live epochs independent channels.
func (t *SimTransport) installEpochFilter(es *simElastic) {
	t.sys.SetReplicaFilter(func(self graph.NodeID, family int, e core.Entry) bool {
		ep, fam, ok := es.resolve(family)
		return ok && ep.InPost(fam, e.Addr, self)
	})
}

func newSimTransport(g *graph.Graph, strat rendezvous.Strategy, rp *strategy.Replicated, opts core.Options) (*SimTransport, error) {
	net, err := sim.New(g)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	sys, err := core.NewSystem(net, strat, opts)
	if err != nil {
		net.Close()
		return nil, fmt.Errorf("cluster: %w", err)
	}
	net.SetInlineHandlers(true)
	t := &SimTransport{net: net, sys: sys, gens: newGenIndex(), rp: rp}
	// The lying hook is installed once, here, and steered through the
	// atomic lie table — Arm/Disarm swap the table under live traffic
	// without racing the engine's handlers.
	sys.SetForger(func(self graph.NodeID, port core.Port) (core.Entry, bool, bool) {
		rec, ok := t.forgeLoad().lieFor(self, port)
		return rec.e, rec.silent, ok
	})
	return t, nil
}

// Name implements Transport.
func (t *SimTransport) Name() string {
	if t.elastic.Load() != nil {
		return "sim-elastic"
	}
	if r := t.Replicas(); r > 1 {
		return fmt.Sprintf("sim-r%d", r)
	}
	return "sim"
}

// Replicas implements ReplicatedTransport; on an elastic transport
// mid-migration it is the dual-epoch family count.
func (t *SimTransport) Replicas() int {
	if es := t.elastic.Load(); es != nil {
		return es.replicas()
	}
	if t.rp == nil {
		return 1
	}
	return t.rp.Replicas()
}

// N implements Transport.
func (t *SimTransport) N() int { return t.net.Graph().N() }

// System exposes the underlying engine (for tests and fault injection).
func (t *SimTransport) System() *core.System { return t.sys }

// Network exposes the underlying simulator network.
func (t *SimTransport) Network() *sim.Network { return t.net }

// simServer adapts core.Server to ServerRef.
type simServer struct {
	srv *core.Server
	t   *SimTransport
}

// Register implements Transport. On an elastic transport the node must
// be a member of the serving epoch; the check is re-applied after the
// engine registration so a racing shrink Resize cannot leave a live
// server outside the membership (best effort — the simulator's Resize
// additionally documents that callers quiesce traffic around it).
func (t *SimTransport) Register(port core.Port, node graph.NodeID) (ServerRef, error) {
	if es := t.elastic.Load(); es != nil && !es.cur.Contains(node) {
		return nil, errOutsideMembership(port, node, es.cur)
	}
	srv, err := t.sys.RegisterServer(port, node)
	if err != nil {
		return nil, err
	}
	if es := t.elastic.Load(); es != nil && !es.cur.Contains(node) {
		_ = srv.Deregister()
		return nil, errOutsideMembership(port, node, es.cur)
	}
	t.gens.bump(port)
	return simServer{srv: srv, t: t}, nil
}

// PostBatch implements Transport. The simulator gains nothing from
// batching — every posting is still a real multicast — so the batch is
// the equivalent sequence of Registers; it is the reference semantics
// the fast path's shard-grouped implementation is checked against.
func (t *SimTransport) PostBatch(regs []Registration) ([]ServerRef, error) {
	for _, r := range regs {
		if !t.net.Graph().Valid(r.Node) {
			return nil, fmt.Errorf("cluster: register at %d: %w", r.Node, graph.ErrNodeRange)
		}
		if t.net.Crashed(r.Node) {
			return nil, fmt.Errorf("cluster: post %q from %d: %w", r.Port, r.Node, sim.ErrCrashed)
		}
	}
	if es := t.elastic.Load(); es != nil {
		for _, r := range regs {
			if !es.cur.Contains(r.Node) {
				return nil, errOutsideMembership(r.Port, r.Node, es.cur)
			}
		}
	}
	refs := make([]ServerRef, len(regs))
	for i, r := range regs {
		ref, err := t.Register(r.Port, r.Node)
		if err != nil {
			return refs[:i], err
		}
		refs[i] = ref
	}
	return refs, nil
}

// Locate implements Transport; on a replicated transport a rendezvous
// miss falls through the replica families in order, each attempt a real
// simulated flood.
func (t *SimTransport) Locate(client graph.NodeID, port core.Port) (core.Entry, error) {
	e, _, err := locateFallthrough(t, client, port, 0)
	return e, err
}

// LocateReplica implements ReplicatedTransport: one real query flood
// over replica k's query set (the engine's own strategy for replica 0;
// dual-epoch family indexing on elastic transports).
func (t *SimTransport) LocateReplica(client graph.NodeID, port core.Port, replica int) (core.Entry, error) {
	targets, dual, err := t.replicaTargets(client, port, replica)
	if err != nil {
		return core.Entry{}, err
	}
	res, err := t.sys.LocateVia(client, port, targets, replica)
	if err != nil {
		return core.Entry{}, err
	}
	if dual {
		t.dualLocates.Add(1)
	}
	return res.Entry, nil
}

// replicaTargets returns the explicit query set for dual family index k
// (nil for replica 0 on non-elastic transports, meaning the engine's
// own strategy) and whether the family belongs to a retiring epoch. An
// empty epoch-family flood — retired family, or a client outside the
// family's membership — short-circuits to a rendezvous miss without
// simulating a vacuous flood (which would cost a full locate timeout).
func (t *SimTransport) replicaTargets(client graph.NodeID, port core.Port, replica int) ([]graph.NodeID, bool, error) {
	if es := t.elastic.Load(); es != nil {
		if !t.net.Graph().Valid(client) {
			return nil, false, fmt.Errorf("cluster: locate from %d: %w", client, graph.ErrNodeRange)
		}
		ep, fam, ok := es.resolve(replica)
		if !ok {
			return nil, false, errRetiredReplica(port, client, replica)
		}
		targets := ep.QuerySet(client, fam)
		if len(targets) == 0 {
			return nil, false, errMissingEpochFlood(port, client)
		}
		return targets, ep == es.prev, nil
	}
	if replica < 0 || replica >= t.Replicas() {
		return nil, false, fmt.Errorf("cluster: replica %d out of [0,%d)", replica, t.Replicas())
	}
	if replica == 0 {
		return nil, false, nil
	}
	return t.rp.Replica(replica).Query(client), false, nil
}

// LocateBatch implements Transport: the equivalent sequence of single
// locates, each a real query flood with collected replies.
func (t *SimTransport) LocateBatch(reqs []LocateReq, res []LocateRes) {
	n := len(reqs)
	if len(res) < n {
		n = len(res)
	}
	for i := 0; i < n; i++ {
		res[i].Entry, res[i].Err = t.Locate(reqs[i].Client, reqs[i].Port)
	}
}

// Probe implements Transport: a real request/reply call to the hinted
// address, request and reply hops both counted by the network.
func (t *SimTransport) Probe(client graph.NodeID, e core.Entry) (core.Entry, error) {
	return t.sys.Probe(client, e)
}

// Gen implements Transport.
func (t *SimTransport) Gen(port core.Port) uint64 { return t.gens.gen(port) }

func (t *SimTransport) genSlot(port core.Port) *atomic.Uint64 { return t.gens.slot(port) }

// LocateAll implements Transport, with the same replica fallthrough as
// Locate.
func (t *SimTransport) LocateAll(client graph.NodeID, port core.Port) ([]core.Entry, error) {
	return locateAllFallthrough(t.Replicas(), func(k int) ([]core.Entry, error) {
		targets, _, err := t.replicaTargets(client, port, k)
		if err != nil {
			return nil, err
		}
		return t.sys.LocateAllVia(client, port, targets, k)
	})
}

// Elastic implements ElasticTransport.
func (t *SimTransport) Elastic() bool { return t.elastic.Load() != nil }

// Epoch implements ElasticTransport.
func (t *SimTransport) Epoch() uint64 {
	if es := t.elastic.Load(); es != nil {
		return es.cur.Seq()
	}
	return 0
}

// Resizing implements ElasticTransport.
func (t *SimTransport) Resizing() bool {
	es := t.elastic.Load()
	return es != nil && es.prev != nil
}

// MigratedPosts implements ElasticTransport.
func (t *SimTransport) MigratedPosts() int64 { return t.migrated.Load() }

// DualEpochLocates implements ElasticTransport.
func (t *SimTransport) DualEpochLocates() int64 { return t.dualLocates.Load() }

// Resize implements ElasticTransport, every step a real simulated
// event: the engine strategy is swapped to the dual phase (union
// posting sets, new-epoch queries), the replica filter widens to both
// epochs' families, and every live server re-posts exactly the delta
// the remap added via a real multicast whose hops the network counts —
// the same charges the fast paths compute from the routing tables.
// Resize does not synchronize with in-flight traffic; quiesce (Drain)
// first when pinning pass accounting.
func (t *SimTransport) Resize(next *strategy.Epoch) (int, error) {
	if t.elastic.Load() == nil {
		return 0, ErrNotElastic
	}
	t.resizeMu.Lock()
	defer t.resizeMu.Unlock()
	es := t.elastic.Load()
	if es.prev != nil {
		return 0, fmt.Errorf("cluster: resize to epoch %d: migration from epoch %d still draining", next.Seq(), es.prev.Seq())
	}
	if err := validateNextEpoch(es.cur, next, t.net.Graph().N()); err != nil {
		return 0, err
	}
	rm, err := strategy.NewRemap(es.cur, next)
	if err != nil {
		return 0, err
	}
	servers := t.sys.LiveServers()
	for _, srv := range servers {
		if !next.Contains(srv.Node()) {
			return 0, errServerOutsideEpoch(srv.Port(), srv.Node(), next)
		}
	}
	dual := &simElastic{cur: next, prev: es.cur, rm: rm}
	t.elastic.Store(dual)
	t.installEpochFilter(dual)
	if err := t.sys.SetStrategy(epochEngineStrategy(next, es.cur, t.net.Graph().N())); err != nil {
		return 0, err
	}
	moved := 0
	movedPorts := make(map[core.Port]bool)
	for _, srv := range servers {
		added := rm.Added(srv.Node())
		if len(added) == 0 {
			continue
		}
		if err := srv.RepostVia(added); err != nil {
			continue // a crashed origin cannot migrate its postings
		}
		moved += len(added)
		movedPorts[srv.Port()] = true
	}
	for port := range movedPorts {
		t.gens.bump(port)
	}
	t.migrated.Add(int64(moved))
	return moved, nil
}

// FinishResize implements ElasticTransport: the engine strategy
// narrows back to the serving epoch alone, the replica filter drops the
// retired families, and the orphaned old-epoch postings of every live
// server expire in place via cache surgery — local state, no simulated
// messages, exactly the zero charge the fast paths apply.
func (t *SimTransport) FinishResize() error {
	if t.elastic.Load() == nil {
		return ErrNotElastic
	}
	t.resizeMu.Lock()
	defer t.resizeMu.Unlock()
	es := t.elastic.Load()
	if es.prev == nil {
		return fmt.Errorf("cluster: no resize in progress")
	}
	retired := &simElastic{cur: es.cur}
	t.elastic.Store(retired)
	t.installEpochFilter(retired)
	if err := t.sys.SetStrategy(epochEngineStrategy(es.cur, nil, t.net.Graph().N())); err != nil {
		return err
	}
	for _, srv := range t.sys.LiveServers() {
		node := srv.Node()
		for _, v := range es.rm.Removed(node) {
			t.sys.ExpireEntry(v, srv.Port(), srv.ID())
		}
	}
	return nil
}

// Crash implements Transport: the node is marked crashed on the network
// and its volatile cache is dropped, as in the engine's crash model.
func (t *SimTransport) Crash(node graph.NodeID) error {
	if err := t.net.Crash(node); err != nil {
		return err
	}
	t.sys.ClearCache(node)
	t.gens.bumpAll()
	t.events.emit(Event{Type: EvCrash, Node: node})
	return nil
}

// Restore implements Transport.
func (t *SimTransport) Restore(node graph.NodeID) error {
	if err := t.net.Restore(node); err != nil {
		return err
	}
	t.events.emit(Event{Type: EvRestore, Node: node})
	return nil
}

// SetEventSink implements EventSource: crash and restore marks are
// pushed to the sink as EvCrash/EvRestore events.
func (t *SimTransport) SetEventSink(fn EventSink) { t.events.set(fn) }

// Passes implements Transport: the simulator's exact hop count.
func (t *SimTransport) Passes() int64 { return t.net.Hops() }

// ResetPasses implements Transport.
func (t *SimTransport) ResetPasses() { t.net.ResetCounters() }

// Close implements Transport: it stops the background reconciliation
// loop, if one was started, then shuts the simulated network down.
func (t *SimTransport) Close() error {
	t.recon.halt()
	t.net.Close()
	return nil
}

// Port implements ServerRef.
func (s simServer) Port() core.Port { return s.srv.Port() }

// Node implements ServerRef.
func (s simServer) Node() graph.NodeID { return s.srv.Node() }

// Repost implements ServerRef.
func (s simServer) Repost() error { return s.srv.Repost() }

// Migrate implements ServerRef. The move invalidates cached hints for
// the port; on an elastic transport the destination must be a member
// of the serving epoch.
func (s simServer) Migrate(to graph.NodeID) error {
	if es := s.t.elastic.Load(); es != nil && !es.cur.Contains(to) {
		return errOutsideMembership(s.srv.Port(), to, es.cur)
	}
	err := s.srv.Migrate(to)
	if err == nil || !errors.Is(err, core.ErrServerGone) {
		s.t.gens.bump(s.srv.Port())
	}
	return err
}

// Deregister implements ServerRef.
func (s simServer) Deregister() error {
	err := s.srv.Deregister()
	if err == nil || !errors.Is(err, core.ErrServerGone) {
		s.t.gens.bump(s.srv.Port())
	}
	return err
}
