package cluster

import (
	"errors"
	"fmt"
	"sync/atomic"

	"matchmake/internal/core"
	"matchmake/internal/graph"
	"matchmake/internal/rendezvous"
	"matchmake/internal/sim"
	"matchmake/internal/strategy"
)

// SimTransport runs the existing internal/core engine over the
// internal/sim store-and-forward network: every posting, query and reply
// is a real simulated message routed hop by hop, and Passes reports the
// network's exact hop counter — the paper's cost measure with no
// approximation. It is the reference backend the fast path is checked
// against, and the right one whenever fidelity beats throughput
// (fault-injection studies, per-message traces, §2.4 robustness work).
//
// The transport owns its network and enables the simulator's inline
// handler mode: the name-server handlers never block, so skipping the
// per-delivery goroutine is safe and roughly doubles serving throughput.
type SimTransport struct {
	net  *sim.Network
	sys  *core.System
	gens *genIndex
	rp   *strategy.Replicated // nil unless replicated
}

var _ Transport = (*SimTransport)(nil)
var _ ReplicatedTransport = (*SimTransport)(nil)

// NewSimTransport builds a fresh simulator network over g and installs
// the core engine with strat. opts tune the engine's locate timeout and
// collect window; the zero value picks the engine defaults.
func NewSimTransport(g *graph.Graph, strat rendezvous.Strategy, opts core.Options) (*SimTransport, error) {
	return newSimTransport(g, rendezvous.Precompute(strat), nil, opts)
}

// NewReplicatedSimTransport builds the paper-exact reference for the
// r-fold replicated rendezvous mode: the engine posts over the union of
// every replica family's posting sets (one real multicast), and a
// locate floods replica 0's query set, falling through family by family
// — each attempt a real simulated flood with its hops counted by the
// network, so the fast paths' fallthrough charges are checked against
// the genuine article. Note a fallthrough attempt on the simulator
// costs a full locate timeout before the next family is tried; keep
// opts.LocateTimeout short in fault studies.
func NewReplicatedSimTransport(g *graph.Graph, rp *strategy.Replicated, opts core.Options) (*SimTransport, error) {
	if rp == nil {
		return nil, fmt.Errorf("cluster: replicated transport needs a strategy.Replicated")
	}
	// The engine's own strategy: union posts, replica-0 queries. The
	// higher replica floods go through LocateVia with explicit targets.
	comp := rendezvous.Precompute(rendezvous.Funcs{
		StrategyName: rp.Name(),
		Universe:     rp.N(),
		PostFunc:     rp.UnionPost,
		QueryFunc:    rp.Base().Query,
	})
	t, err := newSimTransport(g, comp, rp, opts)
	if err != nil {
		return nil, err
	}
	if rp.Replicas() > 1 {
		// Family-scope the rendezvous answers: a node only answers a
		// family-k query with postings it holds as a member of Pₖ of the
		// posting's origin, which keeps the replica families independent
		// channels even where their node sets overlap.
		t.sys.SetReplicaFilter(func(self graph.NodeID, family int, e core.Entry) bool {
			return rp.InPost(family, e.Addr, self)
		})
	}
	return t, nil
}

func newSimTransport(g *graph.Graph, strat rendezvous.Strategy, rp *strategy.Replicated, opts core.Options) (*SimTransport, error) {
	net, err := sim.New(g)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	sys, err := core.NewSystem(net, strat, opts)
	if err != nil {
		net.Close()
		return nil, fmt.Errorf("cluster: %w", err)
	}
	net.SetInlineHandlers(true)
	return &SimTransport{net: net, sys: sys, gens: newGenIndex(), rp: rp}, nil
}

// Name implements Transport.
func (t *SimTransport) Name() string {
	if r := t.Replicas(); r > 1 {
		return fmt.Sprintf("sim-r%d", r)
	}
	return "sim"
}

// Replicas implements ReplicatedTransport.
func (t *SimTransport) Replicas() int {
	if t.rp == nil {
		return 1
	}
	return t.rp.Replicas()
}

// N implements Transport.
func (t *SimTransport) N() int { return t.net.Graph().N() }

// System exposes the underlying engine (for tests and fault injection).
func (t *SimTransport) System() *core.System { return t.sys }

// Network exposes the underlying simulator network.
func (t *SimTransport) Network() *sim.Network { return t.net }

// simServer adapts core.Server to ServerRef.
type simServer struct {
	srv  *core.Server
	gens *genIndex
}

// Register implements Transport.
func (t *SimTransport) Register(port core.Port, node graph.NodeID) (ServerRef, error) {
	srv, err := t.sys.RegisterServer(port, node)
	if err != nil {
		return nil, err
	}
	t.gens.bump(port)
	return simServer{srv: srv, gens: t.gens}, nil
}

// PostBatch implements Transport. The simulator gains nothing from
// batching — every posting is still a real multicast — so the batch is
// the equivalent sequence of Registers; it is the reference semantics
// the fast path's shard-grouped implementation is checked against.
func (t *SimTransport) PostBatch(regs []Registration) ([]ServerRef, error) {
	for _, r := range regs {
		if !t.net.Graph().Valid(r.Node) {
			return nil, fmt.Errorf("cluster: register at %d: %w", r.Node, graph.ErrNodeRange)
		}
		if t.net.Crashed(r.Node) {
			return nil, fmt.Errorf("cluster: post %q from %d: %w", r.Port, r.Node, sim.ErrCrashed)
		}
	}
	refs := make([]ServerRef, len(regs))
	for i, r := range regs {
		ref, err := t.Register(r.Port, r.Node)
		if err != nil {
			return refs[:i], err
		}
		refs[i] = ref
	}
	return refs, nil
}

// Locate implements Transport; on a replicated transport a rendezvous
// miss falls through the replica families in order, each attempt a real
// simulated flood.
func (t *SimTransport) Locate(client graph.NodeID, port core.Port) (core.Entry, error) {
	e, _, err := locateFallthrough(t, client, port, 0)
	return e, err
}

// LocateReplica implements ReplicatedTransport: one real query flood
// over replica k's query set (the engine's own strategy for replica 0).
func (t *SimTransport) LocateReplica(client graph.NodeID, port core.Port, replica int) (core.Entry, error) {
	targets, err := t.replicaTargets(client, replica)
	if err != nil {
		return core.Entry{}, err
	}
	res, err := t.sys.LocateVia(client, port, targets, replica)
	if err != nil {
		return core.Entry{}, err
	}
	return res.Entry, nil
}

// replicaTargets returns the explicit query set for replica k (nil for
// replica 0, meaning the engine's own strategy).
func (t *SimTransport) replicaTargets(client graph.NodeID, replica int) ([]graph.NodeID, error) {
	if replica < 0 || replica >= t.Replicas() {
		return nil, fmt.Errorf("cluster: replica %d out of [0,%d)", replica, t.Replicas())
	}
	if replica == 0 {
		return nil, nil
	}
	return t.rp.Replica(replica).Query(client), nil
}

// LocateBatch implements Transport: the equivalent sequence of single
// locates, each a real query flood with collected replies.
func (t *SimTransport) LocateBatch(reqs []LocateReq, res []LocateRes) {
	n := len(reqs)
	if len(res) < n {
		n = len(res)
	}
	for i := 0; i < n; i++ {
		res[i].Entry, res[i].Err = t.Locate(reqs[i].Client, reqs[i].Port)
	}
}

// Probe implements Transport: a real request/reply call to the hinted
// address, request and reply hops both counted by the network.
func (t *SimTransport) Probe(client graph.NodeID, e core.Entry) (core.Entry, error) {
	return t.sys.Probe(client, e)
}

// Gen implements Transport.
func (t *SimTransport) Gen(port core.Port) uint64 { return t.gens.gen(port) }

func (t *SimTransport) genSlot(port core.Port) *atomic.Uint64 { return t.gens.slot(port) }

// LocateAll implements Transport, with the same replica fallthrough as
// Locate.
func (t *SimTransport) LocateAll(client graph.NodeID, port core.Port) ([]core.Entry, error) {
	return locateAllFallthrough(t.Replicas(), func(k int) ([]core.Entry, error) {
		targets, err := t.replicaTargets(client, k)
		if err != nil {
			return nil, err
		}
		return t.sys.LocateAllVia(client, port, targets, k)
	})
}

// Crash implements Transport: the node is marked crashed on the network
// and its volatile cache is dropped, as in the engine's crash model.
func (t *SimTransport) Crash(node graph.NodeID) error {
	if err := t.net.Crash(node); err != nil {
		return err
	}
	t.sys.ClearCache(node)
	t.gens.bumpAll()
	return nil
}

// Restore implements Transport.
func (t *SimTransport) Restore(node graph.NodeID) error {
	return t.net.Restore(node)
}

// Passes implements Transport: the simulator's exact hop count.
func (t *SimTransport) Passes() int64 { return t.net.Hops() }

// ResetPasses implements Transport.
func (t *SimTransport) ResetPasses() { t.net.ResetCounters() }

// Close implements Transport.
func (t *SimTransport) Close() error {
	t.net.Close()
	return nil
}

// Port implements ServerRef.
func (s simServer) Port() core.Port { return s.srv.Port() }

// Node implements ServerRef.
func (s simServer) Node() graph.NodeID { return s.srv.Node() }

// Repost implements ServerRef.
func (s simServer) Repost() error { return s.srv.Repost() }

// Migrate implements ServerRef. The move invalidates cached hints for
// the port.
func (s simServer) Migrate(to graph.NodeID) error {
	err := s.srv.Migrate(to)
	if err == nil || !errors.Is(err, core.ErrServerGone) {
		s.gens.bump(s.srv.Port())
	}
	return err
}

// Deregister implements ServerRef.
func (s simServer) Deregister() error {
	err := s.srv.Deregister()
	if err == nil || !errors.Is(err, core.ErrServerGone) {
		s.gens.bump(s.srv.Port())
	}
	return err
}
