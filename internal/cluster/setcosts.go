package cluster

import (
	"fmt"
	"sync/atomic"

	"matchmake/internal/core"
	"matchmake/internal/graph"
	"matchmake/internal/rendezvous"
	"matchmake/internal/strategy"
)

// stratSets holds the per-node posting and query sets of a strategy
// together with their multicast-tree pass costs, precomputed once from
// the routing tables. Both off-simulator transports (MemTransport and
// NetTransport) charge the paper's costs from these tables: a posting
// from node v costs postCost[v] passes (the spanning-tree edges of
// P(v)), a query flood from v costs queryCost[v], and each rendezvous
// reply is charged its hop distance separately by the caller.
//
// When a strategy.Weighted is supplied, the hot split's query sets and
// the base∪hot union posting sets are precomputed too, so promoting a
// port at runtime changes which table is read, never what is computed.
type stratSets struct {
	post      [][]graph.NodeID // P(v), precomputed
	query     [][]graph.NodeID // Q(v), precomputed
	postCost  []int64          // multicast-tree edges of P(v) from v
	queryCost []int64          // multicast-tree edges of Q(v) from v

	// Weighted-mode tables (nil when no strategy.Weighted is in play).
	hotQuery      [][]graph.NodeID
	hotQueryCost  []int64
	unionPost     [][]graph.NodeID
	unionPostCost []int64

	// Replicated-mode tables (nil when no strategy.Replicated is in
	// play): repQuery[k][v] is replica k's query set at node v with its
	// multicast cost, repQuery[0] aliasing the base query tables. In
	// this mode post/postCost hold the union posting sets (∪ₖ Pₖ), so
	// one posting multicast serves every replica family.
	repQuery     [][][]graph.NodeID
	repQueryCost [][]int64
}

// hotTables couples the precomputed set tables with the published
// hot-port classification and implements the set-selection rules the
// off-simulator transports share: a cold port floods the base sets, a
// promoted port queries the post-heavy hot split while its servers
// post to the union sets, and a server that has ever posted under the
// union sets keeps doing so (sticky), so a later tombstone always
// covers every node a stale entry could linger at. Both MemTransport
// and NetTransport delegate here, which is what keeps their charges —
// and therefore the equivalence suite — in lockstep.
type hotTables struct {
	sets     *stratSets
	weighted *strategy.Weighted // nil when weighted mode is disabled

	// hotSet is the published hot-port classification, swapped
	// wholesale by SetHotPorts.
	hotSet atomic.Pointer[map[core.Port]bool]
}

// isHot reports whether port currently runs the hot split.
func (h *hotTables) isHot(port core.Port) bool {
	m := h.hotSet.Load()
	return m != nil && (*m)[port]
}

// publish swaps in a new hot classification.
func (h *hotTables) publish(m *map[core.Port]bool) { h.hotSet.Store(m) }

// hotPorts returns the currently published hot classification.
func (h *hotTables) hotPorts() []core.Port {
	m := h.hotSet.Load()
	if m == nil {
		return nil
	}
	out := make([]core.Port, 0, len(*m))
	for p := range *m {
		out = append(out, p)
	}
	return out
}

// querySets returns the query flood targets and multicast cost for a
// locate of port from client under the current classification.
func (h *hotTables) querySets(client graph.NodeID, port core.Port) ([]graph.NodeID, int64) {
	if h.weighted != nil && h.isHot(port) {
		return h.sets.hotQuery[client], h.sets.hotQueryCost[client]
	}
	return h.sets.query[client], h.sets.queryCost[client]
}

// replicas returns the number of replica families in the tables (1 when
// unreplicated).
func (h *hotTables) replicas() int {
	if h.sets.repQuery == nil {
		return 1
	}
	return len(h.sets.repQuery)
}

// replicaQuerySets returns replica k's query flood targets and multicast
// cost for a locate of port from client. Replica 0 is the base strategy
// (and honors the weighted hot classification, which is mutually
// exclusive with replication anyway); higher replicas read the
// replicated-mode tables.
func (h *hotTables) replicaQuerySets(client graph.NodeID, port core.Port, k int) ([]graph.NodeID, int64) {
	if k == 0 || h.sets.repQuery == nil {
		return h.querySets(client, port)
	}
	return h.sets.repQuery[k][client], h.sets.repQueryCost[k][client]
}

// postSets returns the posting targets and multicast cost for a server
// of port posting from node; postedHot is the server's sticky
// posted-under-union flag, set here the first time the union sets are
// chosen.
func (h *hotTables) postSets(postedHot *atomic.Bool, port core.Port, node graph.NodeID) ([]graph.NodeID, int64) {
	if h.weighted == nil {
		return h.sets.post[node], h.sets.postCost[node]
	}
	if postedHot.Load() || h.isHot(port) {
		postedHot.Store(true)
		return h.sets.unionPost[node], h.sets.unionPostCost[node]
	}
	return h.sets.post[node], h.sets.postCost[node]
}

// newStratSets precomputes the set/cost tables for strat (already
// Precompute-wrapped) over g with routing, plus the weighted tables when
// w is non-nil and the replicated tables when rp is non-nil (in which
// case the posting tables hold the union sets and strat must be rp's
// base). Weighted and replicated modes are mutually exclusive.
func newStratSets(g *graph.Graph, routing *graph.Routing, strat rendezvous.Strategy, w *strategy.Weighted, rp *strategy.Replicated) (*stratSets, error) {
	if w != nil && rp != nil {
		return nil, fmt.Errorf("cluster: weighted and replicated modes are mutually exclusive")
	}
	n := g.N()
	s := &stratSets{
		post:      make([][]graph.NodeID, n),
		query:     make([][]graph.NodeID, n),
		postCost:  make([]int64, n),
		queryCost: make([]int64, n),
	}
	for v := 0; v < n; v++ {
		id := graph.NodeID(v)
		if rp != nil {
			s.post[v] = rp.UnionPost(id)
		} else {
			s.post[v] = strat.Post(id)
		}
		s.query[v] = strat.Query(id)
		pc, err := routing.MulticastCost(id, s.post[v])
		if err != nil {
			return nil, fmt.Errorf("cluster: post set of %d: %w", v, err)
		}
		qc, err := routing.MulticastCost(id, s.query[v])
		if err != nil {
			return nil, fmt.Errorf("cluster: query set of %d: %w", v, err)
		}
		s.postCost[v] = int64(pc)
		s.queryCost[v] = int64(qc)
	}
	if rp != nil && rp.Replicas() > 1 {
		r := rp.Replicas()
		s.repQuery = make([][][]graph.NodeID, r)
		s.repQueryCost = make([][]int64, r)
		s.repQuery[0], s.repQueryCost[0] = s.query, s.queryCost
		for k := 1; k < r; k++ {
			rep := rp.Replica(k)
			s.repQuery[k] = make([][]graph.NodeID, n)
			s.repQueryCost[k] = make([]int64, n)
			for v := 0; v < n; v++ {
				id := graph.NodeID(v)
				s.repQuery[k][v] = rep.Query(id)
				qc, err := routing.MulticastCost(id, s.repQuery[k][v])
				if err != nil {
					return nil, fmt.Errorf("cluster: replica %d query set of %d: %w", k, v, err)
				}
				s.repQueryCost[k][v] = int64(qc)
			}
		}
	}
	if w != nil {
		hot := w.Hot()
		s.hotQuery = make([][]graph.NodeID, n)
		s.hotQueryCost = make([]int64, n)
		s.unionPost = make([][]graph.NodeID, n)
		s.unionPostCost = make([]int64, n)
		for v := 0; v < n; v++ {
			id := graph.NodeID(v)
			s.hotQuery[v] = hot.Query(id)
			s.unionPost[v] = w.UnionPost(id)
			qc, err := routing.MulticastCost(id, s.hotQuery[v])
			if err != nil {
				return nil, fmt.Errorf("cluster: hot query set of %d: %w", v, err)
			}
			pc, err := routing.MulticastCost(id, s.unionPost[v])
			if err != nil {
				return nil, fmt.Errorf("cluster: union post set of %d: %w", v, err)
			}
			s.hotQueryCost[v] = int64(qc)
			s.unionPostCost[v] = int64(pc)
		}
	}
	return s, nil
}
