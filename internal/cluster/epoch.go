package cluster

import (
	"errors"
	"fmt"
	"sort"

	"matchmake/internal/core"
	"matchmake/internal/graph"
	"matchmake/internal/strategy"
)

// ErrNotElastic reports an epoch operation on a transport built without
// elastic membership (use the NewElastic* constructors).
var ErrNotElastic = errors.New("cluster: transport has no elastic membership")

// ElasticTransport is implemented by transports supporting
// epoch-versioned elastic membership (strategy.Epoch): the active node
// set — and the rendezvous strategy serving it — can change at runtime
// while locates keep succeeding. A resize is a two-step state machine:
//
//  1. Resize(next) installs the next epoch and begins the dual-epoch
//     migration: every live server re-posts exactly the delta the
//     minimal-movement remap computed (strategy.Remap), and until the
//     old epoch drains a locate floods the new epoch's rendezvous
//     families first, falling through to the old epoch's — the same
//     fallthrough machinery replicated rendezvous uses, with the old
//     epoch's families appended after the new one's.
//  2. FinishResize retires the old epoch: postings that belong only to
//     it expire in place (local garbage collection, no messages) and
//     locates stop falling through.
//
// Hint generations are bumped for moved ports only, so cached addresses
// of unaffected services keep validating by probe across the
// transition.
type ElasticTransport interface {
	// Elastic reports whether elastic membership is enabled; the other
	// methods fail with ErrNotElastic (or return zero) when it is not.
	Elastic() bool
	// Epoch returns the serving epoch's sequence number.
	Epoch() uint64
	// Resizing reports whether a dual-epoch migration is in progress.
	Resizing() bool
	// Resize installs next as the serving epoch and migrates the
	// minimal-movement posting delta, returning the number of (port,
	// rendezvous-node) postings placed — which, absent crashed servers,
	// equals the remap's MovedPosts prediction for the live server
	// homes. It fails when a previous resize is still draining or when
	// a live server is homed outside next's membership (migrate it
	// first).
	Resize(next *strategy.Epoch) (moved int, err error)
	// FinishResize retires the previous epoch once the operator deems
	// the migration drained: old-epoch-only postings are expired
	// locally and the dual-epoch locate path switches off. Call it
	// after in-flight locates from the dual phase have completed.
	FinishResize() error
	// MigratedPosts returns the cumulative count of postings moved by
	// resizes over the transport's lifetime.
	MigratedPosts() int64
	// DualEpochLocates returns the cumulative count of locate floods
	// that were resolved by a retiring epoch's rendezvous family during
	// a dual-epoch phase.
	DualEpochLocates() int64
}

// epochTables is one installed membership epoch on an elastic
// transport: the epoch geometry plus its precomputed per-node set and
// multicast-cost tables, mirroring stratSets for the epoch world.
// During a dual-epoch migration prev links the retiring epoch's tables
// and the posting tables are widened to the union of both epochs'
// posting sets, so lifecycle postings (and especially tombstones) cover
// every node either epoch's floods can read.
type epochTables struct {
	ep        *strategy.Epoch
	post      [][]graph.NodeID // effective posting set per node (union over replica families)
	postCost  []int64
	query     [][][]graph.NodeID // [family][node] query sets
	queryCost [][]int64

	// Dual-epoch migration state; all nil outside a migration.
	prev         *epochTables
	rm           *strategy.Remap  // prev.ep → ep, the minimal-movement delta
	dualPost     [][]graph.NodeID // post ∪ prev.post, per node
	dualPostCost []int64
}

// newEpochTables precomputes ep's serving tables over g. When prev is
// non-nil the result is a dual-epoch (migration) state: the remap
// prev→ep is computed and the posting tables are widened to the union
// of both epochs.
func newEpochTables(g *graph.Graph, routing *graph.Routing, ep *strategy.Epoch, prev *epochTables) (*epochTables, error) {
	n := g.N()
	if ep.Universe() != n {
		return nil, fmt.Errorf("cluster: epoch %d universe %d != graph size %d", ep.Seq(), ep.Universe(), n)
	}
	r := ep.Replicas()
	et := &epochTables{
		ep:        ep,
		post:      make([][]graph.NodeID, n),
		postCost:  make([]int64, n),
		query:     make([][][]graph.NodeID, r),
		queryCost: make([][]int64, r),
	}
	for k := 0; k < r; k++ {
		et.query[k] = make([][]graph.NodeID, n)
		et.queryCost[k] = make([]int64, n)
	}
	for v := 0; v < n; v++ {
		id := graph.NodeID(v)
		et.post[v] = ep.PostSet(id)
		pc, err := routing.MulticastCost(id, et.post[v])
		if err != nil {
			return nil, fmt.Errorf("cluster: epoch %d post set of %d: %w", ep.Seq(), v, err)
		}
		et.postCost[v] = int64(pc)
		for k := 0; k < r; k++ {
			et.query[k][v] = ep.QuerySet(id, k)
			qc, err := routing.MulticastCost(id, et.query[k][v])
			if err != nil {
				return nil, fmt.Errorf("cluster: epoch %d query set of %d: %w", ep.Seq(), v, err)
			}
			et.queryCost[k][v] = int64(qc)
		}
	}
	if prev != nil {
		rm, err := strategy.NewRemap(prev.ep, ep)
		if err != nil {
			return nil, err
		}
		et.prev, et.rm = prev, rm
		et.dualPost = make([][]graph.NodeID, n)
		et.dualPostCost = make([]int64, n)
		for v := 0; v < n; v++ {
			id := graph.NodeID(v)
			et.dualPost[v] = unionIDs(et.post[v], prev.post[v])
			pc, err := routing.MulticastCost(id, et.dualPost[v])
			if err != nil {
				return nil, fmt.Errorf("cluster: dual post set of %d: %w", v, err)
			}
			et.dualPostCost[v] = int64(pc)
		}
	}
	return et, nil
}

// retired returns a copy of et with the migration state cleared — the
// published state after FinishResize.
func (et *epochTables) retired() *epochTables {
	return &epochTables{
		ep:        et.ep,
		post:      et.post,
		postCost:  et.postCost,
		query:     et.query,
		queryCost: et.queryCost,
	}
}

// replicas returns the dual-epoch family count: the serving epoch's
// replica families plus, while migrating, the retiring epoch's appended
// after them — which is how the ordinary replica-fallthrough loop
// becomes the dual-epoch locate.
func (et *epochTables) replicas() int {
	r := et.ep.Replicas()
	if et.prev != nil {
		r += et.prev.ep.Replicas()
	}
	return r
}

// resolve maps a dual-epoch family index to the owning epoch's tables
// and its local family number; ok is false when k indexes a family that
// no longer exists (a retired epoch's, raced by FinishResize).
func (et *epochTables) resolve(k int) (tab *epochTables, fam int, ok bool) {
	r := et.ep.Replicas()
	if k >= 0 && k < r {
		return et, k, true
	}
	if et.prev != nil && k >= r && k < r+et.prev.ep.Replicas() {
		return et.prev, k - r, true
	}
	return nil, 0, false
}

// queryFor returns dual family k's flood targets and multicast cost for
// client, plus the resolved epoch tables (for family scoping) and
// whether k resolved at all. Empty targets mean the client is not a
// member of that family's epoch: the flood is vacuous and costs
// nothing.
func (et *epochTables) queryFor(client graph.NodeID, k int) (targets []graph.NodeID, cost int64, tab *epochTables, fam int, ok bool) {
	tab, fam, ok = et.resolve(k)
	if !ok {
		return nil, 0, nil, 0, false
	}
	return tab.query[fam][client], tab.queryCost[fam][client], tab, fam, true
}

// postFor returns the posting targets and multicast cost for a server
// at node under the current phase: the serving epoch's sets normally,
// widened to both epochs' union during a migration.
func (et *epochTables) postFor(node graph.NodeID) ([]graph.NodeID, int64) {
	if et.prev != nil {
		return et.dualPost[node], et.dualPostCost[node]
	}
	return et.post[node], et.postCost[node]
}

// errRetiredReplica builds the rendezvous-miss error a flood over a
// no-longer-existing family reports: FinishResize raced an in-flight
// fallthrough, and the correct outcome is a silent miss, not a hard
// failure.
func errRetiredReplica(port core.Port, client graph.NodeID, k int) error {
	return fmt.Errorf("cluster: locate %q from %d: replica %d of a retired epoch: %w", port, client, k, core.ErrNotFound)
}

// errMissingEpochFlood is the miss returned without flooding when a
// family's query set is empty at this client (the client is outside
// that epoch's membership).
func errMissingEpochFlood(port core.Port, client graph.NodeID) error {
	return fmt.Errorf("cluster: locate %q from %d: no rendezvous in this epoch: %w", port, client, core.ErrNotFound)
}

// validateNextEpoch applies the shared epoch-transition admission rules.
func validateNextEpoch(cur *strategy.Epoch, next *strategy.Epoch, universe int) error {
	if next == nil {
		return fmt.Errorf("cluster: resize needs a next epoch")
	}
	if next.Universe() != universe {
		return fmt.Errorf("cluster: next epoch universe %d != graph size %d", next.Universe(), universe)
	}
	if next.Seq() <= cur.Seq() {
		return fmt.Errorf("cluster: next epoch seq %d must exceed current %d", next.Seq(), cur.Seq())
	}
	return nil
}

// errServerOutsideEpoch reports a live server that would fall off the
// membership — the operator must migrate it into the surviving range
// before resizing.
func errServerOutsideEpoch(port core.Port, node graph.NodeID, ep *strategy.Epoch) error {
	return fmt.Errorf("cluster: server %q at node %d is outside epoch %d's membership (active %d); migrate it first",
		port, node, ep.Seq(), ep.Active())
}

// errOutsideMembership reports a registration at a node the serving
// epoch does not include.
func errOutsideMembership(port core.Port, node graph.NodeID, ep *strategy.Epoch) error {
	return fmt.Errorf("cluster: register %q at %d: node outside epoch %d's membership (active %d): %w",
		port, node, ep.Seq(), ep.Active(), graph.ErrNodeRange)
}

// unionIDs returns a ∪ b as a fresh sorted slice.
func unionIDs(a, b []graph.NodeID) []graph.NodeID {
	seen := make(map[graph.NodeID]bool, len(a)+len(b))
	out := make([]graph.NodeID, 0, len(a)+len(b))
	for _, s := range [][]graph.NodeID{a, b} {
		for _, v := range s {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
