package cluster

import (
	"sync/atomic"

	"matchmake/internal/core"
	"matchmake/internal/graph"
)

// EventType discriminates cluster lifecycle events (see Event).
type EventType uint8

// Lifecycle event kinds delivered to an EventSink. Register,
// deregister and migrate events are emitted by the Cluster itself as
// the operations pass through it; crash, restore and process-death
// events come from the transport (an EventSource), which is the layer
// that actually observes them — including kill -9'd node-shard
// processes noticed by the socket transport's health tracking.
const (
	// EvRegister reports a successful server registration (Port, Node).
	EvRegister EventType = iota + 1
	// EvDeregister reports a server deregistration (Port, Node).
	EvDeregister
	// EvMigrate reports a server migration; Node is the new home.
	EvMigrate
	// EvCrash reports a node explicitly marked crashed (Node).
	EvCrash
	// EvRestore reports a crashed node brought back (Node).
	EvRestore
	// EvProcDown reports a node-shard process observed dead on the
	// socket transport; [Lo, Hi) is the node range it owned. This is
	// the kill -9 signal: the first failed call against the process
	// raises it, before any repair has run.
	EvProcDown
	// EvProcUp reports a node-shard process answering again after a
	// detected death, with its range's lost state re-posted by the
	// repair loop; [Lo, Hi) is the recovered node range.
	EvProcUp
	// EvEpoch reports an elastic-membership transition: a new epoch
	// (sequence number Epoch) became the serving epoch.
	EvEpoch
)

// String names the event type for reports and wire encodings.
func (t EventType) String() string {
	switch t {
	case EvRegister:
		return "register"
	case EvDeregister:
		return "deregister"
	case EvMigrate:
		return "migrate"
	case EvCrash:
		return "crash"
	case EvRestore:
		return "restore"
	case EvProcDown:
		return "proc-down"
	case EvProcUp:
		return "proc-up"
	case EvEpoch:
		return "epoch"
	default:
		return "unknown"
	}
}

// Event is one cluster lifecycle occurrence pushed to the EventSink:
// the observable state changes a service edge needs to stream to
// watching clients (registrations appearing, servers going away, nodes
// and node-shard processes crashing, membership epochs turning over).
// Which fields are meaningful depends on Type; the rest are zero.
type Event struct {
	// Type is the event kind.
	Type EventType
	// Port is the registered service port (register/deregister/migrate
	// events).
	Port core.Port
	// Node is the server's home node, or the crashed/restored node.
	Node graph.NodeID
	// Lo and Hi bound the node range [Lo, Hi) of a dead or recovered
	// node-shard process.
	Lo, Hi int
	// Epoch is the serving epoch's sequence number (epoch events).
	Epoch uint64
}

// EventSink receives lifecycle events. Sinks run inline on the
// emitting path — a registration, a crash mark, the socket transport's
// health tracking — so they must be fast and non-blocking; buffer and
// fan out elsewhere (the gate's watch hub does).
type EventSink func(Event)

// EventSource is implemented by transports that can push lifecycle
// events they observe below the Cluster's API surface: explicit
// crash/restore marks, and — on the socket transport — node-shard
// process deaths and repair-loop recoveries. Cluster.New wires
// Options.OnEvent through to the transport automatically.
type EventSource interface {
	// SetEventSink installs the sink (nil disables emission). It must
	// be safe to call concurrently with operations.
	SetEventSink(EventSink)
}

// eventSink is the shared sink holder transports embed: an atomic
// pointer so emission on hot paths is one load, and installation can
// race operations safely.
type eventSink struct {
	fn atomic.Pointer[EventSink]
}

// set installs fn (nil clears).
func (s *eventSink) set(fn EventSink) {
	if fn == nil {
		s.fn.Store(nil)
		return
	}
	s.fn.Store(&fn)
}

// emit delivers ev to the installed sink, if any.
func (s *eventSink) emit(ev Event) {
	if fn := s.fn.Load(); fn != nil {
		(*fn)(ev)
	}
}

// eventRef wraps a transport ServerRef so lifecycle operations on the
// handle (deregister, migrate) reach the cluster's event sink; the
// transport only sees its own Register calls.
type eventRef struct {
	ServerRef
	sink EventSink
}

func (r *eventRef) Deregister() error {
	node := r.Node()
	err := r.ServerRef.Deregister()
	if err == nil {
		r.sink(Event{Type: EvDeregister, Port: r.Port(), Node: node})
	}
	return err
}

func (r *eventRef) Migrate(to graph.NodeID) error {
	err := r.ServerRef.Migrate(to)
	if err == nil {
		r.sink(Event{Type: EvMigrate, Port: r.Port(), Node: to})
	}
	return err
}

// wrapRef wraps ref for event emission when a sink is installed.
func (c *Cluster) wrapRef(ref ServerRef) ServerRef {
	if c.opts.OnEvent == nil || ref == nil {
		return ref
	}
	return &eventRef{ServerRef: ref, sink: c.opts.OnEvent}
}
