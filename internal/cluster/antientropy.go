package cluster

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"matchmake/internal/core"
	"matchmake/internal/graph"
)

// Anti-entropy: the self-stabilization layer over posting state.
//
// The repair loop of PR 4 heals what it can observe — a process death.
// A rendezvous node holding silently corrupted state (a dropped
// posting, a duplicate parked at the wrong node, a stale address from a
// retired epoch, a bit-flipped entry with a poisoned timestamp) is
// never touched by it, and the §2.1 merge rule actively protects the
// poison: a corrupt entry carrying a huge logical timestamp masks every
// honest re-post. Anti-entropy closes that gap. Each reconciliation
// round compares, per rendezvous node, a cheap xor digest of the node's
// active postings against the digest the live registration table says
// the node should hold; only mismatched rows are dumped and diffed, and
// only the diff is repaired — unexpected entries expire in place (a
// local decision, no messages, like epoch garbage collection), missing
// or wrong entries are dropped first (clearing any masking timestamp)
// and then re-posted per server at the diff targets' real
// multicast-tree cost. Digest exchange itself is the §5 "services
// regularly poll their rendezvous nodes" maintenance metadata and
// charges no passes, so a quiescent loop is free and the sim=mem=net
// equivalence gates keep pinning the cost model: all three transports
// charge exactly the same repair traffic for the same corruption.

// postingDigest is the stable per-entry summary the anti-entropy layer
// xors into a node's row digest: FNV-1a over the port bytes, the server
// instance id and the advertised address. Timestamps are deliberately
// excluded — an entry with the right (port, instance, address) is
// correct state no matter when it was posted — and tombstones never
// contribute, so legitimate deregistration and migration tombstones are
// invisible to reconciliation.
func postingDigest(port core.Port, serverID uint64, addr graph.NodeID) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(port); i++ {
		h ^= uint64(port[i])
		h *= prime64
	}
	for i := 0; i < 8; i++ {
		h ^= (serverID >> (8 * i)) & 0xff
		h *= prime64
	}
	a := uint64(addr)
	for i := 0; i < 8; i++ {
		h ^= (a >> (8 * i)) & 0xff
		h *= prime64
	}
	return h
}

// ReconcileStats is a snapshot of a transport's anti-entropy counters
// since construction (Metrics windows them per run).
type ReconcileStats struct {
	// Rounds is the number of completed reconciliation rounds.
	Rounds int64
	// Repaired counts repair actions taken: every posting dropped,
	// expired or re-posted because a digest row disagreed with the
	// registration ground truth.
	Repaired int64
	// Injected counts corruption operations applied through Corrupt.
	Injected int64
}

// AntiEntropyTransport is implemented by transports with the
// self-stabilizing posting layer: a digest-based reconciliation round,
// an adversarial corruption injector for chaos testing, and a
// background loop driving rounds until Close.
type AntiEntropyTransport interface {
	// ReconcileRound runs one full reconciliation pass over every
	// non-crashed rendezvous node and returns the number of repair
	// actions it took (0 means the round found posting state already
	// converged). Repair re-posts are charged at their real
	// multicast-tree cost; digest checks and local expiries are free.
	ReconcileRound() (int, error)
	// Corrupt applies an adversarial corruption plan to the posting
	// state and returns the number of operations injected. The plan is
	// derived deterministically from opts, so equal options corrupt
	// equal clusters identically across transports.
	Corrupt(opts CorruptOptions) (int, error)
	// StartReconcile launches the background reconciliation loop with
	// the given period; it is stopped by Close. Calling it again
	// replaces the previous loop.
	StartReconcile(interval time.Duration)
	// ReconcileStats returns the anti-entropy counters.
	ReconcileStats() ReconcileStats
}

// CorruptClass selects one adversarial corruption behaviour for
// CorruptOptions.
type CorruptClass int

// The corruption classes of the chaos harness. Each models a distinct
// way rendezvous state silently diverges from the P(s) ground truth.
const (
	// CorruptDrop silently removes a posting from one of its rendezvous
	// nodes — the node "forgot" the server.
	CorruptDrop CorruptClass = iota
	// CorruptDuplicate parks a copy of a live posting at a node outside
	// the server's posting set — an orphan that answers queries it
	// should never see.
	CorruptDuplicate
	// CorruptStale rewrites a posting at one of its rendezvous nodes to
	// an old address with an ancient timestamp — the retired-epoch
	// leftover of an unobserved migration.
	CorruptStale
	// CorruptBitFlip rewrites a posting's address to a bit-flipped
	// value and poisons its timestamp with a huge logical time, so the
	// §2.1 merge rule shields the corruption from honest re-posts.
	CorruptBitFlip
)

// corruptMaskTime is the poisoned logical timestamp of CorruptBitFlip
// entries: far above anything the posting clocks reach, so only an
// explicit drop (never a merge) can displace the entry.
const corruptMaskTime = uint64(1) << 62

// CorruptOptions parameterizes the adversarial corruption injector.
type CorruptOptions struct {
	// Seed seeds the deterministic plan builder; equal seeds over equal
	// registration tables produce identical corruption on every
	// transport.
	Seed int64
	// Count is the number of corruption operations to inject (0 injects
	// nothing).
	Count int
	// Classes restricts the injected classes; empty means all four.
	Classes []CorruptClass
}

// corruptReg is the registration ground truth the plan builder draws
// victims from: one live server instance and its current posting
// targets.
type corruptReg struct {
	port    core.Port
	id      uint64
	node    graph.NodeID
	targets []graph.NodeID
}

// corruptOp is one transport-agnostic corruption action: either drop
// the (port, id) posting cached at node, or force-inject e at node.
type corruptOp struct {
	node graph.NodeID
	drop bool
	port core.Port
	id   uint64
	e    core.Entry
}

// buildCorruptPlan derives a deterministic corruption plan from opts
// and the registration ground truth. n is the graph size (orphan
// placement draws from it). Injected entries use fixed timestamps
// (ancient for stale, poisoned for bit-flips), so the plan — and hence
// the repair work — is identical across transports.
func buildCorruptPlan(opts CorruptOptions, regs []corruptReg, n int) []corruptOp {
	if opts.Count <= 0 || len(regs) == 0 || n <= 0 {
		return nil
	}
	classes := opts.Classes
	if len(classes) == 0 {
		classes = []CorruptClass{CorruptDrop, CorruptDuplicate, CorruptStale, CorruptBitFlip}
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	plan := make([]corruptOp, 0, opts.Count)
	// The iteration cap bounds the loop when a class cannot apply at all
	// — e.g. orphan placement under a broadcast strategy whose posting
	// sets cover every node — so the builder degrades to a short plan
	// instead of spinning.
	for iter := 0; len(plan) < opts.Count && iter < opts.Count*16+64; iter++ {
		r := regs[rng.Intn(len(regs))]
		if len(r.targets) == 0 {
			continue
		}
		v := r.targets[rng.Intn(len(r.targets))]
		switch classes[rng.Intn(len(classes))] {
		case CorruptDrop:
			plan = append(plan, corruptOp{node: v, drop: true, port: r.port, id: r.id})
		case CorruptDuplicate:
			// Park the orphan at a node outside the posting set.
			w := graph.NodeID(rng.Intn(n))
			retry := 0
			for contains(r.targets, w) && retry < 8 {
				w = graph.NodeID(rng.Intn(n))
				retry++
			}
			if contains(r.targets, w) {
				continue // tiny graph fully covered; try another victim
			}
			plan = append(plan, corruptOp{node: w, e: core.Entry{
				Port: r.port, Addr: r.node, ServerID: r.id, Time: 2, Active: true,
			}})
		case CorruptStale:
			plan = append(plan, corruptOp{node: v, e: core.Entry{
				Port: r.port, Addr: graph.NodeID((int(r.node) + 1) % n), ServerID: r.id, Time: 1, Active: true,
			}})
		case CorruptBitFlip:
			plan = append(plan, corruptOp{node: v, e: core.Entry{
				Port: r.port, Addr: graph.NodeID(int(r.node) ^ 1), ServerID: r.id, Time: corruptMaskTime, Active: true,
			}})
		}
	}
	return plan
}

func contains(s []graph.NodeID, v graph.NodeID) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// expectedPosting is one ground-truth entry of a node's expected row:
// the (instance, address) a live registration should have cached there.
type expectedPosting struct {
	id   uint64
	addr graph.NodeID
}

// expectedRow is a node's ground-truth posting row keyed by (port,
// instance): what reconciliation diffs a dumped actual row against.
type expectedRow map[core.Port]map[uint64]graph.NodeID

func (r expectedRow) add(port core.Port, id uint64, addr graph.NodeID) {
	byID := r[port]
	if byID == nil {
		byID = make(map[uint64]graph.NodeID, 1)
		r[port] = byID
	}
	byID[id] = addr
}

// digest xors the row into the node digest the ground truth predicts.
func (r expectedRow) digest() uint64 {
	var d uint64
	for port, byID := range r {
		for id, addr := range byID {
			d ^= postingDigest(port, id, addr)
		}
	}
	return d
}

// rowDiff diffs a dumped actual row against the expected ground truth
// for one node and reports what repair must do there: entries to drop
// in place (orphans, wrong addresses, masking timestamps) and the
// (port, id) pairs whose honest posting must be re-posted to this node.
// Tombstones and inactive entries in actual are ignored — they are
// legitimate state (deregistration, migration GC) and never contribute
// to digests.
func rowDiff(expected expectedRow, actual []core.Entry) (drops []expectedPair, reposts []expectedPair) {
	seen := make(map[expectedPair]graph.NodeID, len(actual))
	for _, e := range actual {
		if !e.Active {
			continue
		}
		seen[expectedPair{port: e.Port, id: e.ServerID}] = e.Addr
	}
	for pair, addr := range seen {
		want, ok := expected[pair.port][pair.id]
		if !ok {
			// Orphan: nothing should be cached here for this instance.
			drops = append(drops, pair)
			continue
		}
		if addr != want {
			// Stale or bit-flipped address: drop first so a poisoned
			// timestamp cannot mask the honest re-post, then re-post.
			drops = append(drops, pair)
			reposts = append(reposts, pair)
		}
	}
	for port, byID := range expected {
		for id := range byID {
			if _, ok := seen[expectedPair{port: port, id: id}]; !ok {
				// Missing: drop clears any masking tombstone, then
				// re-post restores the entry.
				drops = append(drops, expectedPair{port: port, id: id})
				reposts = append(reposts, expectedPair{port: port, id: id})
			}
		}
	}
	return drops, reposts
}

// expectedPair identifies one (port, server instance) posting.
type expectedPair struct {
	port core.Port
	id   uint64
}

// reconciler holds the anti-entropy counters and background-loop state
// a transport embeds. Counters are cumulative since construction;
// Metrics windows them per run.
type reconciler struct {
	rounds   atomic.Int64
	repaired atomic.Int64
	injected atomic.Int64

	loopMu sync.Mutex
	stop   chan struct{}
	wg     sync.WaitGroup
}

// stats snapshots the counters.
func (r *reconciler) stats() ReconcileStats {
	return ReconcileStats{
		Rounds:   r.rounds.Load(),
		Repaired: r.repaired.Load(),
		Injected: r.injected.Load(),
	}
}

// startLoop launches (or replaces) the background loop running round
// every interval; errors are ignored — a round racing shutdown or a
// resize simply retries next tick.
func (r *reconciler) startLoop(interval time.Duration, round func() (int, error)) {
	if interval <= 0 {
		return
	}
	r.loopMu.Lock()
	defer r.loopMu.Unlock()
	r.haltLocked()
	stop := make(chan struct{})
	r.stop = stop
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				_, _ = round()
			}
		}
	}()
}

// halt stops the background loop, if any, and waits for it.
func (r *reconciler) halt() {
	r.loopMu.Lock()
	defer r.loopMu.Unlock()
	r.haltLocked()
}

func (r *reconciler) haltLocked() {
	if r.stop != nil {
		close(r.stop)
		r.wg.Wait()
		r.stop = nil
	}
}
