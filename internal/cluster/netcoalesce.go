package cluster

import (
	"sync"
	"sync/atomic"
	"time"

	"matchmake/internal/core"
	"matchmake/internal/graph"
)

// netCoalescer merges concurrent single locates into shared wire
// floods: while one coordinator-side flood is on the wire, every
// locate that arrives queues up behind it, and the whole queue is then
// flushed as one process-grouped batch — one multi-query frame per
// node-shard process instead of one frame per locate. The paper's cost
// model is untouched: passes are charged from the routing tables per
// logical locate, and the batch machinery charges exactly what the
// equivalent sequence of single floods would (pinned by
// TestNetCoalescedEquivalence), so coalescing compresses wire frames,
// never model messages.
//
// The window state machine:
//
//	idle    — no leader. The first locate to arrive appends itself,
//	          sees no leader mark, and becomes the leader.
//	leading — the leader (optionally, see below) waits CoalesceWindow,
//	          then takes up to CoalesceBatch queued ops as one batch
//	          and floods them grouped by replica family. Locates
//	          arriving meanwhile just queue: this is natural batching —
//	          concurrency, not a timer, is what builds batches.
//	handoff — after its flood the leader promotes the oldest still-
//	          queued op to leader and returns; with an empty queue it
//	          clears the leader mark (back to idle). A leader's own op
//	          is always in the batch it flushes, so every locate leads
//	          at most one turn and none waits more than one flood it
//	          isn't part of.
//
// The window wait is adaptive: a leader sleeps only when it was
// promoted — proof a flood just finished with callers still queued,
// i.e. the path is under concurrent load. The first locate after an
// idle period (and every locate of a strictly sequential caller)
// flushes immediately, so low concurrency degenerates to zero-latency
// passthrough of the direct flood path.
type netCoalescer struct {
	t        *NetTransport
	window   time.Duration
	maxBatch int

	mu      sync.Mutex
	queue   []*coalOp
	flush   []*coalOp // leader's double buffer for the queue head
	leading bool

	coalesced atomic.Int64 // locates that shared a flood with others
	floods    atomic.Int64 // floods carrying more than one locate
}

// defaultCoalesceBatch caps a coalesced flood when NetOptions leaves
// CoalesceBatch zero: big enough to flatten syscall overhead, small
// enough to bound frame size and per-flush decode latency.
const defaultCoalesceBatch = 64

func newNetCoalescer(t *NetTransport, window time.Duration, maxBatch int) *netCoalescer {
	if maxBatch <= 0 {
		maxBatch = defaultCoalesceBatch
	}
	return &netCoalescer{t: t, window: window, maxBatch: maxBatch}
}

// coalOp is one queued locate: inputs, result slot, and two buffered
// signal channels (done: result ready; lead: promoted to leader). Ops
// are pooled, so the steady-state queue churn allocates nothing.
type coalOp struct {
	client  graph.NodeID
	port    core.Port
	replica int

	entry core.Entry
	err   error

	done chan struct{}
	lead chan struct{}
}

var coalOpPool = sync.Pool{New: func() any {
	return &coalOp{done: make(chan struct{}, 1), lead: make(chan struct{}, 1)}
}}

// locate runs one locate through the coalescer: enqueue, lead a flush
// turn if no leader is active (or if promoted while waiting), and
// collect the op's result.
func (co *netCoalescer) locate(client graph.NodeID, port core.Port, replica int) (core.Entry, error) {
	op := coalOpPool.Get().(*coalOp)
	op.client, op.port, op.replica = client, port, replica
	op.entry, op.err = core.Entry{}, nil

	co.mu.Lock()
	co.queue = append(co.queue, op)
	lead := !co.leading
	if lead {
		co.leading = true
	}
	co.mu.Unlock()

	if lead {
		co.run(false)
		<-op.done
	} else {
		select {
		case <-op.done:
		case <-op.lead:
			co.run(true)
			<-op.done
		}
	}
	e, err := op.entry, op.err
	coalOpPool.Put(op)
	return e, err
}

// run is one leader turn: optionally wait the adaptive window, take up
// to maxBatch ops off the queue, flood them, then hand leadership to
// the oldest op still queued (or go idle). The caller's own op is at
// the head of the queue when run starts, so it is always in the batch.
func (co *netCoalescer) run(promoted bool) {
	if co.window > 0 && promoted {
		time.Sleep(co.window)
	}
	co.mu.Lock()
	n := len(co.queue)
	if n > co.maxBatch {
		n = co.maxBatch
	}
	batch := append(co.flush[:0], co.queue[:n]...)
	co.flush = batch
	rest := copy(co.queue, co.queue[n:])
	for i := rest; i < len(co.queue); i++ {
		co.queue[i] = nil // drop refs: pooled ops must not pin reuse
	}
	co.queue = co.queue[:rest]
	co.mu.Unlock()

	co.t.flushLocates(batch)
	if len(batch) > 1 {
		co.coalesced.Add(int64(len(batch)))
		co.floods.Add(1)
	}
	// Signal results before handing off leadership: batch aliases
	// co.flush, and the next leader reuses that buffer the moment it is
	// promoted, so every read of batch must come first. done is
	// buffered, so the leader never blocks here.
	for _, op := range batch {
		op.done <- struct{}{}
	}

	co.mu.Lock()
	var next *coalOp
	if len(co.queue) > 0 {
		next = co.queue[0]
	} else {
		co.leading = false
	}
	co.mu.Unlock()
	if next != nil {
		next.lead <- struct{}{}
	}
}

// coalBatch is the pooled request/result workspace of one coalesced
// flush.
type coalBatch struct {
	reqs []LocateReq
	res  []LocateRes
	ops  []*coalOp
}

var coalBatchPool = sync.Pool{New: func() any { return &coalBatch{} }}

// flushLocates executes one coalesced batch. A batch of one takes the
// direct single-flood path unchanged; larger batches are grouped by
// replica family — in practice almost always all family 0, since
// fallthrough re-floods are rare — and each group runs through the
// process-grouped batch machinery, whose per-request charges are
// exactly those of the equivalent sequence of single floods. That
// equality is what keeps coalesced and uncoalesced pass accounting
// identical.
func (t *NetTransport) flushLocates(batch []*coalOp) {
	if len(batch) == 1 {
		op := batch[0]
		op.entry, op.err = t.locateReplicaDirect(op.client, op.port, op.replica)
		return
	}
	lo, hi := batch[0].replica, batch[0].replica
	for _, op := range batch[1:] {
		lo, hi = min(lo, op.replica), max(hi, op.replica)
	}
	cb := coalBatchPool.Get().(*coalBatch)
	for rep := lo; rep <= hi; rep++ {
		cb.reqs, cb.res, cb.ops = cb.reqs[:0], cb.res[:0], cb.ops[:0]
		for _, op := range batch {
			if op.replica == rep {
				cb.reqs = append(cb.reqs, LocateReq{Client: op.client, Port: op.port})
				cb.ops = append(cb.ops, op)
			}
		}
		switch len(cb.ops) {
		case 0:
		case 1:
			op := cb.ops[0]
			op.entry, op.err = t.locateReplicaDirect(op.client, op.port, op.replica)
		default:
			for range cb.ops {
				cb.res = append(cb.res, LocateRes{})
			}
			t.locateBatchReplica(cb.reqs, cb.res, rep)
			for i, op := range cb.ops {
				op.entry, op.err = cb.res[i].Entry, cb.res[i].Err
			}
		}
	}
	cb.ops = cb.ops[:0] // drop refs: pooled ops must not pin reuse
	coalBatchPool.Put(cb)
}
