package cluster

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"matchmake/internal/core"
	"matchmake/internal/graph"
	"matchmake/internal/rendezvous"
	"matchmake/internal/strategy"
	"matchmake/internal/topology"
)

func newWeightedTransport(t *testing.T, n int) *MemTransport {
	t.Helper()
	hot, err := strategy.PostHeavy(n, strategy.AlphaQuerySize(n, 16))
	if err != nil {
		t.Fatal(err)
	}
	w, err := strategy.NewWeighted(rendezvous.Checkerboard(n), hot)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewWeightedMemTransport(topology.Complete(n), w, 0)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestWeightedPromotion checks the (M3′) trade end to end: promoting a
// hot port reposts its servers under the union sets, keeps every answer
// identical, and makes its locates strictly cheaper than under the
// balanced base strategy.
func TestWeightedPromotion(t *testing.T) {
	const n = 64
	tr := newWeightedTransport(t, n)
	if _, err := tr.Register("hot", 9); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Register("cold", 21); err != nil {
		t.Fatal(err)
	}

	costOf := func(port core.Port) int64 {
		var total int64
		for c := 0; c < n; c++ {
			before := tr.Passes()
			e, err := tr.Locate(graph.NodeID(c), port)
			if err != nil {
				t.Fatalf("locate %q from %d: %v", port, c, err)
			}
			wantAddr := graph.NodeID(9)
			if port == "cold" {
				wantAddr = 21
			}
			if e.Addr != wantAddr {
				t.Fatalf("locate %q from %d returned %d, want %d", port, c, e.Addr, wantAddr)
			}
			total += tr.Passes() - before
		}
		return total
	}

	baseHot := costOf("hot")
	baseCold := costOf("cold")
	if err := tr.SetHotPorts([]core.Port{"hot"}); err != nil {
		t.Fatal(err)
	}
	weightedHot := costOf("hot")
	weightedCold := costOf("cold")

	if weightedHot >= baseHot {
		t.Fatalf("hot port cost %d after promotion, %d before; want strictly cheaper", weightedHot, baseHot)
	}
	if weightedCold != baseCold {
		t.Fatalf("cold port cost changed: %d before, %d after", baseCold, weightedCold)
	}
}

// TestWeightedChurnAfterDemotion checks the sticky-union tombstone
// protocol: a port that was hot keeps posting (and tombstoning) the
// union sets after demotion, so no query set can see a stale active
// entry of a deregistered or migrated server.
func TestWeightedChurnAfterDemotion(t *testing.T) {
	const n = 64
	tr := newWeightedTransport(t, n)
	ref, err := tr.Register("svc", 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.SetHotPorts([]core.Port{"svc"}); err != nil {
		t.Fatal(err)
	}
	if err := tr.SetHotPorts(nil); err != nil { // demote
		t.Fatal(err)
	}
	if err := ref.Migrate(33); err != nil {
		t.Fatal(err)
	}
	for c := 0; c < n; c += 3 {
		e, err := tr.Locate(graph.NodeID(c), "svc")
		if err != nil {
			t.Fatalf("locate from %d: %v", c, err)
		}
		if e.Addr != 33 {
			t.Fatalf("locate from %d returned stale address %d, want 33", c, e.Addr)
		}
	}
	if err := ref.Deregister(); err != nil {
		t.Fatal(err)
	}
	for c := 0; c < n; c += 3 {
		if _, err := tr.Locate(graph.NodeID(c), "svc"); err == nil {
			t.Fatalf("locate from %d still resolves a deregistered server", c)
		}
	}
}

// TestWeightedRegisterDuringHot checks that a server registered while
// its port is already hot posts the union sets immediately.
func TestWeightedRegisterDuringHot(t *testing.T) {
	const n = 64
	tr := newWeightedTransport(t, n)
	if _, err := tr.Register("svc", 3); err != nil {
		t.Fatal(err)
	}
	if err := tr.SetHotPorts([]core.Port{"svc"}); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Register("svc", 40); err != nil {
		t.Fatal(err)
	}
	for c := 0; c < n; c += 7 {
		e, err := tr.Locate(graph.NodeID(c), "svc")
		if err != nil {
			t.Fatalf("locate from %d: %v", c, err)
		}
		if e.Addr != 40 {
			t.Fatalf("locate from %d returned %d, want the fresher 40", c, e.Addr)
		}
	}
}

// TestWeightedClusterLoop wires popularity counting and the
// reclassification loop through the Cluster: under a skewed workload
// the hot port is promoted and passes/locate drops.
func TestWeightedClusterLoop(t *testing.T) {
	const n = 64
	tr := newWeightedTransport(t, n)
	c := New(tr, Options{HotPorts: 1, HotRefresh: time.Hour, DisableCoalescing: true})
	defer c.Close()
	names := make([]core.Port, 4)
	for p := range names {
		names[p] = core.Port(fmt.Sprintf("svc-%04d", p))
		if _, err := c.Register(names[p], graph.NodeID(p*11)); err != nil {
			t.Fatal(err)
		}
	}
	c.ResetMetrics()
	// Skewed traffic: svc-0000 dominates.
	for i := 0; i < 200; i++ {
		port := names[0]
		if i%10 == 9 {
			port = names[1+i%3]
		}
		if _, err := c.Locate(graph.NodeID(i%n), port); err != nil {
			t.Fatal(err)
		}
	}
	before := c.Metrics().PassesPerLocate
	if err := c.ReclassifyHot(); err != nil {
		t.Fatal(err)
	}
	hot := tr.HotPorts()
	if len(hot) != 1 || hot[0] != names[0] {
		t.Fatalf("hot ports = %v, want [%s]", hot, names[0])
	}
	c.ResetMetrics()
	for i := 0; i < 200; i++ {
		port := names[0]
		if i%10 == 9 {
			port = names[1+i%3]
		}
		if _, err := c.Locate(graph.NodeID(i%n), port); err != nil {
			t.Fatal(err)
		}
	}
	after := c.Metrics().PassesPerLocate
	if after >= before {
		t.Fatalf("passes/locate %.2f after promotion, %.2f before; want strictly lower", after, before)
	}
}

// TestReclassifyWithoutWeighted checks the failure mode is loud: a
// plain MemTransport has the SetHotPorts method but no weighted
// strategy, so ReclassifyHot must error rather than tick in vain.
func TestReclassifyWithoutWeighted(t *testing.T) {
	tr, err := NewMemTransport(topology.Complete(16), rendezvous.Checkerboard(16), 0)
	if err != nil {
		t.Fatal(err)
	}
	c := New(tr, Options{HotPorts: 1, HotRefresh: time.Hour})
	defer c.Close()
	if err := c.ReclassifyHot(); err == nil {
		t.Fatal("ReclassifyHot on a non-weighted transport should fail")
	}
	if err := tr.SetHotPorts(nil); err == nil {
		t.Fatal("SetHotPorts on a non-weighted transport should fail")
	}
}

// TestWeightedConcurrentReclassify races locates, registrations and
// reclassification so the promotion protocol's locking is exercised
// under the race detector.
func TestWeightedConcurrentReclassify(t *testing.T) {
	const n = 64
	tr := newWeightedTransport(t, n)
	names := make([]core.Port, 6)
	for p := range names {
		names[p] = core.Port(fmt.Sprintf("svc-%04d", p))
		if _, err := tr.Register(names[p], graph.NodeID(p*9)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				if _, err := tr.Locate(graph.NodeID((w+i)%n), names[i%len(names)]); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			_ = tr.SetHotPorts([]core.Port{names[i%len(names)]})
		}
		_ = tr.SetHotPorts(nil)
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if _, err := tr.Register(names[i%len(names)], graph.NodeID((i*17)%n)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
}
