package cluster

import (
	"matchmake/internal/core"
	"matchmake/internal/graph"
)

// Byzantine seam of the paper-exact reference: the lies travel as real
// simulated replies. The engine forger hook (installed once at
// construction, see newSimTransport) reads the atomic lie table, so an
// armed rendezvous node suppresses or forges its reply inside
// core.System.HandleMessage — the forged entry then competes in the
// client's collection window and pays real reply hops, exactly like an
// honest answer.

var _ ByzantineTransport = (*SimTransport)(nil)

// forgeLoad returns the armed lie table, or a nil table when disarmed
// (nil-safe for lookups).
func (t *SimTransport) forgeLoad() forgeTable {
	p := t.forge.Load()
	if p == nil {
		return nil
	}
	return *p
}

// Arm implements ByzantineTransport: same deterministic plan as the
// fast paths, swapped into the engine hook's lie table atomically.
func (t *SimTransport) Arm(opts ArmOptions) (int, error) {
	plan := buildForgePlan(opts, t.corruptRegs(), t.net.Graph().N(), t.rp)
	ft := buildForgeTable(plan)
	t.forge.Store(&ft)
	t.gens.bumpAll()
	return len(plan), nil
}

// Disarm implements ByzantineTransport.
func (t *SimTransport) Disarm() error {
	t.forge.Store(nil)
	t.gens.bumpAll()
	return nil
}

// ArmedNodes implements ByzantineTransport.
func (t *SimTransport) ArmedNodes() []graph.NodeID {
	return t.forgeLoad().nodes()
}

// LocateReplicaAt implements ByzantineTransport: one real flood over
// replica k's query set, with the winning reply's sender attributed.
func (t *SimTransport) LocateReplicaAt(client graph.NodeID, port core.Port, replica int) (core.Entry, graph.NodeID, error) {
	targets, dual, err := t.replicaTargets(client, port, replica)
	if err != nil {
		return core.Entry{}, 0, err
	}
	res, err := t.sys.LocateVia(client, port, targets, replica)
	if err != nil {
		return core.Entry{}, 0, err
	}
	if dual {
		t.dualLocates.Add(1)
	}
	return res.Entry, res.From, nil
}

// Quarantine implements ByzantineTransport (hint invalidation only, as
// on the fast paths).
func (t *SimTransport) Quarantine(graph.NodeID) {
	t.gens.bumpAll()
}
