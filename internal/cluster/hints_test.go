package cluster

import (
	"errors"
	"fmt"
	"testing"

	"matchmake/internal/core"
	"matchmake/internal/graph"
	"matchmake/internal/rendezvous"
	"matchmake/internal/strategy"
	"matchmake/internal/topology"
)

func newHintedMemCluster(t *testing.T, n int, opts Options) (*Cluster, *MemTransport) {
	t.Helper()
	tr, err := NewMemTransport(topology.Complete(n), rendezvous.Checkerboard(n), 0)
	if err != nil {
		t.Fatal(err)
	}
	c := New(tr, opts)
	t.Cleanup(func() { c.Close() })
	return c, tr
}

// TestHintHitPath checks the fast path end to end: the first locate
// floods and caches, the second is served by a single probe charged
// 2×Dist(client, server) passes.
func TestHintHitPath(t *testing.T) {
	gr, err := topology.NewGrid(6, 6)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewMemTransport(gr.G, strategy.Manhattan(gr), 0)
	if err != nil {
		t.Fatal(err)
	}
	c := New(tr, Options{Hints: true})
	defer c.Close()

	server := graph.NodeID(14)
	if _, err := c.Register("svc", server); err != nil {
		t.Fatal(err)
	}
	client := graph.NodeID(3)
	e1, err := c.Locate(client, "svc")
	if err != nil {
		t.Fatal(err)
	}
	before := tr.Passes()
	e2, err := c.Locate(client, "svc")
	if err != nil {
		t.Fatal(err)
	}
	if e2.Addr != e1.Addr || e2.ServerID != e1.ServerID {
		t.Fatalf("hinted answer %+v != flooded answer %+v", e2, e1)
	}
	routing, err := graph.NewRouting(gr.G)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(2 * routing.Dist(client, server))
	if got := tr.Passes() - before; got != want {
		t.Fatalf("hint hit charged %d passes, want 2×Dist = %d", got, want)
	}
	if m := c.Metrics(); m.HintHits != 1 {
		t.Fatalf("HintHits = %d, want 1", m.HintHits)
	}
}

// TestHintInvalidation drives each churn event and checks the hint is
// not served stale: the next locate re-floods (or probes and fails) and
// returns exactly what an unhinted cluster would.
func TestHintInvalidation(t *testing.T) {
	t.Run("migrate", func(t *testing.T) {
		c, tr := newHintedMemCluster(t, 16, Options{Hints: true})
		ref, err := c.Register("svc", 3)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Locate(7, "svc"); err != nil {
			t.Fatal(err)
		}
		gen := tr.Gen("svc")
		if err := ref.Migrate(11); err != nil {
			t.Fatal(err)
		}
		if tr.Gen("svc") == gen {
			t.Fatal("migrate did not bump the port generation")
		}
		e, err := c.Locate(7, "svc")
		if err != nil {
			t.Fatal(err)
		}
		if e.Addr != 11 {
			t.Fatalf("post-migrate locate returned %d, want 11", e.Addr)
		}
		if m := c.Metrics(); m.HintStale == 0 {
			t.Fatalf("expected a stale-hint fallback, metrics: %+v", m)
		}
	})

	t.Run("deregister", func(t *testing.T) {
		c, _ := newHintedMemCluster(t, 16, Options{Hints: true})
		ref, err := c.Register("svc", 3)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Locate(7, "svc"); err != nil {
			t.Fatal(err)
		}
		if err := ref.Deregister(); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Locate(7, "svc"); !errors.Is(err, core.ErrNotFound) {
			t.Fatalf("locate after deregister: %v; want ErrNotFound", err)
		}
	})

	t.Run("crash", func(t *testing.T) {
		c, tr := newHintedMemCluster(t, 16, Options{Hints: true})
		if _, err := c.Register("svc", 3); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Locate(7, "svc"); err != nil {
			t.Fatal(err)
		}
		gen := tr.Gen("svc")
		if err := tr.Crash(3); err != nil {
			t.Fatal(err)
		}
		if tr.Gen("svc") == gen {
			t.Fatal("crash did not bump the generation index")
		}
		// The hinted cluster must behave exactly like an unhinted one:
		// the flood may still find surviving postings that point at the
		// crashed node, but the hint itself is not probed blindly.
		hinted, hintedErr := c.Locate(7, "svc")
		unhinted, unhintedErr := tr.Locate(7, "svc")
		if (hintedErr == nil) != (unhintedErr == nil) {
			t.Fatalf("hinted err=%v unhinted err=%v", hintedErr, unhintedErr)
		}
		if hintedErr == nil && (hinted.Addr != unhinted.Addr || hinted.ServerID != unhinted.ServerID) {
			t.Fatalf("hinted %+v != unhinted %+v", hinted, unhinted)
		}
	})

	t.Run("register", func(t *testing.T) {
		// A fresh registration must invalidate hints so hinted and
		// unhinted clusters keep returning the same (freshest) winner.
		c, _ := newHintedMemCluster(t, 16, Options{Hints: true})
		if _, err := c.Register("svc", 3); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Locate(7, "svc"); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Register("svc", 9); err != nil {
			t.Fatal(err)
		}
		e, err := c.Locate(7, "svc")
		if err != nil {
			t.Fatal(err)
		}
		if e.Addr != 9 {
			t.Fatalf("locate after second registration returned %d, want the fresher 9", e.Addr)
		}
	})
}

// TestHintedUnhintedEquivalence runs one deterministic churny workload
// against a hinted and an unhinted cluster over identically prepared
// transports and demands identical answers on every step, with the
// hinted run spending no more passes than the unhinted one (hints only
// ever replace a flood with a cheaper probe; the sanctioned delta).
func TestHintedUnhintedEquivalence(t *testing.T) {
	const n = 36
	build := func(hints bool) (*Cluster, *MemTransport, []ServerRef) {
		tr, err := NewMemTransport(topology.Complete(n), rendezvous.Checkerboard(n), 0)
		if err != nil {
			t.Fatal(err)
		}
		c := New(tr, Options{Hints: hints, DisableCoalescing: true})
		t.Cleanup(func() { c.Close() })
		refs := make([]ServerRef, 4)
		for p := range refs {
			ref, err := c.Register(core.Port(fmt.Sprintf("svc-%d", p)), graph.NodeID(p*7%n))
			if err != nil {
				t.Fatal(err)
			}
			refs[p] = ref
		}
		return c, tr, refs
	}
	hc, htr, hrefs := build(true)
	uc, utr, urefs := build(false)

	step := 0
	check := func(client graph.NodeID, port core.Port) {
		t.Helper()
		step++
		he, herr := hc.Locate(client, port)
		ue, uerr := uc.Locate(client, port)
		if (herr == nil) != (uerr == nil) {
			t.Fatalf("step %d: locate %q from %d: hinted err=%v unhinted err=%v", step, port, client, herr, uerr)
		}
		if herr == nil && (he.Addr != ue.Addr || he.ServerID != ue.ServerID) {
			t.Fatalf("step %d: locate %q from %d: hinted %+v != unhinted %+v", step, port, client, he, ue)
		}
	}

	for round := 0; round < 3; round++ {
		for cl := 0; cl < n; cl += 5 {
			for p := 0; p < 4; p++ {
				check(graph.NodeID(cl), core.Port(fmt.Sprintf("svc-%d", p)))
			}
		}
		// Churn between rounds: migrate one service, deregister and
		// replace another, crash and restore a node.
		to := graph.NodeID((round*11 + 13) % n)
		if err := hrefs[0].Migrate(to); err != nil {
			t.Fatal(err)
		}
		if err := urefs[0].Migrate(to); err != nil {
			t.Fatal(err)
		}
		if round == 1 {
			if err := hrefs[1].Deregister(); err != nil {
				t.Fatal(err)
			}
			if err := urefs[1].Deregister(); err != nil {
				t.Fatal(err)
			}
			var err error
			if hrefs[1], err = hc.Register("svc-1", 20); err != nil {
				t.Fatal(err)
			}
			if urefs[1], err = uc.Register("svc-1", 20); err != nil {
				t.Fatal(err)
			}
			victim := graph.NodeID(30)
			if err := htr.Crash(victim); err != nil {
				t.Fatal(err)
			}
			if err := utr.Crash(victim); err != nil {
				t.Fatal(err)
			}
			if err := htr.Restore(victim); err != nil {
				t.Fatal(err)
			}
			if err := utr.Restore(victim); err != nil {
				t.Fatal(err)
			}
		}
	}
	hm, um := hc.Metrics(), uc.Metrics()
	if hm.HintHits == 0 {
		t.Fatal("hinted run never hit a hint")
	}
	if hm.Passes >= um.Passes {
		t.Fatalf("hinted run spent %d passes, unhinted %d; hints should only cheapen", hm.Passes, um.Passes)
	}
}

// TestHintCacheDeadSlot unit-tests the fail-fast protocol: a probe miss
// marks the slot dead, a flood that re-resolves to the same instance
// under the same generation keeps it dead, and either a new generation
// or a different winner revives it.
func TestHintCacheDeadSlot(t *testing.T) {
	h := newHintCache(4)
	e := core.Entry{Port: "svc", Addr: 3, ServerID: 7, Time: 1, Active: true}

	h.put(1, "svc", e, 5, nil, 0)
	sl, hv := h.lookup(1, "svc")
	if sl == nil || hv == nil || hv.dead {
		t.Fatalf("expected live hint, got %+v", hv)
	}
	h.markDead(sl, hv)
	if _, hv = h.lookup(1, "svc"); hv == nil || !hv.dead {
		t.Fatalf("expected dead hint, got %+v", hv)
	}
	// Same instance, same generation: stays dead.
	h.put(1, "svc", e, 5, nil, 0)
	if _, hv = h.lookup(1, "svc"); hv == nil || !hv.dead {
		t.Fatalf("same-gen same-server put revived a dead hint: %+v", hv)
	}
	// New generation revives.
	h.put(1, "svc", e, 6, nil, 0)
	if _, hv = h.lookup(1, "svc"); hv == nil || hv.dead {
		t.Fatalf("new-generation put did not revive: %+v", hv)
	}
	// Different winner under the old generation also revives.
	h.markDead(h.lookup(1, "svc"))
	e2 := e
	e2.Addr, e2.ServerID = 9, 8
	h.put(1, "svc", e2, 6, nil, 0)
	if _, hv = h.lookup(1, "svc"); hv == nil || hv.dead || hv.entry.Addr != 9 {
		t.Fatalf("different-winner put did not revive: %+v", hv)
	}
	// Out-of-range clients are ignored gracefully.
	h.put(99, "svc", e, 1, nil, 0)
	if sl, hv := h.lookup(99, "svc"); sl != nil || hv != nil {
		t.Fatal("out-of-range client produced a hint")
	}
}

// TestHintHitZeroAllocs pins the acceptance criterion: the hint-hit
// locate path allocates nothing.
func TestHintHitZeroAllocs(t *testing.T) {
	c, _ := newHintedMemCluster(t, 64, Options{Hints: true})
	if _, err := c.Register("svc", 9); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Locate(2, "svc"); err != nil {
		t.Fatal(err) // prime the hint
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if _, err := c.Locate(2, "svc"); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("hint-hit locate allocates %.1f objects/op, want 0", allocs)
	}
}
