package cluster

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"matchmake/internal/core"
	"matchmake/internal/graph"
	"matchmake/internal/rendezvous"
	"matchmake/internal/sim"
)

// MemTransport is the in-process fast path: postings and queries apply
// directly to a sharded Store, with no per-message goroutines, channels
// or timeouts. It still charges the exact message-pass cost the
// simulator would on a healthy network — the posting and query sets of
// every node are fixed by the strategy, so their spanning-tree multicast
// costs are precomputed once from the routing tables, and each
// rendezvous reply is charged its hop distance back to the client.
//
// Crashes are modelled at the endpoints (a crashed origin cannot post
// or query — sim.ErrCrashed, as on the simulator — and a crashed
// rendezvous node drops postings and does not answer); unlike the
// simulator, in-flight traffic is not charged partial paths through
// crashed interior nodes. That partial-path charging is the one place
// the two transports' accounting can diverge — see the package comment
// and equivalence_test.go.
type MemTransport struct {
	g       *graph.Graph
	routing *graph.Routing
	strat   rendezvous.Strategy
	store   *Store

	post      [][]graph.NodeID // P(i), precomputed
	query     [][]graph.NodeID // Q(j), precomputed
	postCost  []int64          // multicast-tree edges of P(i) from i
	queryCost []int64          // multicast-tree edges of Q(j) from j

	crashed  []atomic.Bool
	passes   atomic.Int64
	serverID atomic.Uint64
}

var _ Transport = (*MemTransport)(nil)

// NewMemTransport builds the fast path over g with strategy strat. The
// strategy's universe must match the graph size; shards sizes the
// backing store (0 picks a default).
func NewMemTransport(g *graph.Graph, strat rendezvous.Strategy, shards int) (*MemTransport, error) {
	n := g.N()
	if strat.N() != n {
		return nil, fmt.Errorf("cluster: strategy universe %d != graph size %d", strat.N(), n)
	}
	routing, err := graph.NewRouting(g)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	strat = rendezvous.Precompute(strat)
	t := &MemTransport{
		g:         g,
		routing:   routing,
		strat:     strat,
		store:     NewStore(n, shards),
		post:      make([][]graph.NodeID, n),
		query:     make([][]graph.NodeID, n),
		postCost:  make([]int64, n),
		queryCost: make([]int64, n),
		crashed:   make([]atomic.Bool, n),
	}
	for v := 0; v < n; v++ {
		id := graph.NodeID(v)
		t.post[v] = strat.Post(id)
		t.query[v] = strat.Query(id)
		pc, err := routing.MulticastCost(id, t.post[v])
		if err != nil {
			return nil, fmt.Errorf("cluster: post set of %d: %w", v, err)
		}
		qc, err := routing.MulticastCost(id, t.query[v])
		if err != nil {
			return nil, fmt.Errorf("cluster: query set of %d: %w", v, err)
		}
		t.postCost[v] = int64(pc)
		t.queryCost[v] = int64(qc)
	}
	return t, nil
}

// Name implements Transport.
func (t *MemTransport) Name() string { return "mem" }

// N implements Transport.
func (t *MemTransport) N() int { return t.g.N() }

// Store exposes the backing rendezvous cache (for tests and reports).
func (t *MemTransport) Store() *Store { return t.store }

// Strategy returns the (precomputed) strategy in use.
func (t *MemTransport) Strategy() rendezvous.Strategy { return t.strat }

// memServer is a ServerRef on the fast path.
type memServer struct {
	t    *MemTransport
	port core.Port
	id   uint64

	mu   sync.Mutex
	node graph.NodeID
	gone bool
}

// Register implements Transport.
func (t *MemTransport) Register(port core.Port, node graph.NodeID) (ServerRef, error) {
	if !t.g.Valid(node) {
		return nil, fmt.Errorf("cluster: register at %d: %w", node, graph.ErrNodeRange)
	}
	srv := &memServer{t: t, port: port, id: t.serverID.Add(1), node: node}
	if err := t.postEntry(srv, node, true); err != nil {
		return nil, err
	}
	return srv, nil
}

// postEntry delivers a posting (or tombstone) for srv from-and-about
// node to every live node of P(node), charging the multicast-tree cost.
// A crashed origin cannot post, matching the simulator's multicast.
func (t *MemTransport) postEntry(srv *memServer, node graph.NodeID, active bool) error {
	if t.crashed[node].Load() {
		return fmt.Errorf("cluster: post %q from %d: %w", srv.port, node, sim.ErrCrashed)
	}
	e := core.Entry{
		Port:     srv.port,
		Addr:     node,
		ServerID: srv.id,
		Time:     t.store.NextTime(),
		Active:   active,
	}
	t.passes.Add(t.postCost[node])
	for _, v := range t.post[node] {
		if t.crashed[v].Load() {
			continue
		}
		t.store.Put(v, e)
	}
	return nil
}

// Locate implements Transport: it charges the query multicast flood,
// reads every live rendezvous node's cache, charges each hit's reply
// path, and returns the freshest active entry — the same winner the
// engine's collect-window logic converges to.
func (t *MemTransport) Locate(client graph.NodeID, port core.Port) (core.Entry, error) {
	if !t.g.Valid(client) {
		return core.Entry{}, fmt.Errorf("cluster: locate from %d: %w", client, graph.ErrNodeRange)
	}
	if t.crashed[client].Load() {
		return core.Entry{}, fmt.Errorf("cluster: locate from %d: %w", client, sim.ErrCrashed)
	}
	t.passes.Add(t.queryCost[client])
	var (
		best  core.Entry
		found bool
	)
	for _, v := range t.query[client] {
		if t.crashed[v].Load() {
			continue
		}
		e, ok := t.store.Get(v, port)
		if !ok {
			continue // misses are silent, as in §1.5
		}
		t.passes.Add(int64(t.routing.Dist(v, client)))
		if !found || e.Time > best.Time {
			best, found = e, true
		}
	}
	if !found {
		return core.Entry{}, fmt.Errorf("cluster: locate %q from %d: %w", port, client, core.ErrNotFound)
	}
	return best, nil
}

// LocateAll implements Transport.
func (t *MemTransport) LocateAll(client graph.NodeID, port core.Port) ([]core.Entry, error) {
	if !t.g.Valid(client) {
		return nil, fmt.Errorf("cluster: locate-all from %d: %w", client, graph.ErrNodeRange)
	}
	if t.crashed[client].Load() {
		return nil, fmt.Errorf("cluster: locate-all from %d: %w", client, sim.ErrCrashed)
	}
	t.passes.Add(t.queryCost[client])
	freshest := make(map[uint64]core.Entry)
	for _, v := range t.query[client] {
		if t.crashed[v].Load() {
			continue
		}
		entries := t.store.GetAll(v, port)
		if len(entries) == 0 {
			continue
		}
		t.passes.Add(int64(t.routing.Dist(v, client)) * int64(len(entries)))
		for _, e := range entries {
			if cur, ok := freshest[e.ServerID]; !ok || e.Time > cur.Time {
				freshest[e.ServerID] = e
			}
		}
	}
	var out []core.Entry
	for _, e := range freshest {
		if e.Active {
			out = append(out, e)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cluster: locate-all %q from %d: %w", port, client, core.ErrNotFound)
	}
	return out, nil
}

// Crash implements Transport: the node stops accepting postings and
// answering queries, and its volatile cache is lost.
func (t *MemTransport) Crash(node graph.NodeID) error {
	if !t.g.Valid(node) {
		return fmt.Errorf("cluster: crash %d: %w", node, graph.ErrNodeRange)
	}
	t.crashed[node].Store(true)
	t.store.ClearNode(node)
	return nil
}

// Restore implements Transport.
func (t *MemTransport) Restore(node graph.NodeID) error {
	if !t.g.Valid(node) {
		return fmt.Errorf("cluster: restore %d: %w", node, graph.ErrNodeRange)
	}
	t.crashed[node].Store(false)
	return nil
}

// Passes implements Transport.
func (t *MemTransport) Passes() int64 { return t.passes.Load() }

// ResetPasses implements Transport.
func (t *MemTransport) ResetPasses() { t.passes.Store(0) }

// Close implements Transport.
func (t *MemTransport) Close() error { return nil }

// Port implements ServerRef.
func (s *memServer) Port() core.Port { return s.port }

// Node implements ServerRef.
func (s *memServer) Node() graph.NodeID {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.node
}

// Repost implements ServerRef.
func (s *memServer) Repost() error {
	s.mu.Lock()
	node, gone := s.node, s.gone
	s.mu.Unlock()
	if gone {
		return core.ErrServerGone
	}
	return s.t.postEntry(s, node, true)
}

// Migrate implements ServerRef: tombstone first (the stale address must
// lose), then announce the new address with a fresher timestamp. As in
// the engine, a crashed old host cannot tombstone, but the fresh
// posting's newer timestamp still wins wherever both are seen.
func (s *memServer) Migrate(to graph.NodeID) error {
	if !s.t.g.Valid(to) {
		return fmt.Errorf("cluster: migrate to %d: %w", to, graph.ErrNodeRange)
	}
	s.mu.Lock()
	if s.gone {
		s.mu.Unlock()
		return core.ErrServerGone
	}
	from := s.node
	s.node = to
	s.mu.Unlock()
	tombErr := s.t.postEntry(s, from, false)
	if err := s.t.postEntry(s, to, true); err != nil {
		return errors.Join(tombErr, err)
	}
	return nil
}

// Deregister implements ServerRef.
func (s *memServer) Deregister() error {
	s.mu.Lock()
	if s.gone {
		s.mu.Unlock()
		return core.ErrServerGone
	}
	s.gone = true
	node := s.node
	s.mu.Unlock()
	return s.t.postEntry(s, node, false)
}
