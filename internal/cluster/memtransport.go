package cluster

import (
	"errors"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"

	"matchmake/internal/core"
	"matchmake/internal/graph"
	"matchmake/internal/rendezvous"
	"matchmake/internal/sim"
	"matchmake/internal/stats"
	"matchmake/internal/strategy"
)

// MemTransport is the in-process fast path: postings and queries apply
// directly to a sharded Store, with no per-message goroutines, channels
// or timeouts. It still charges the exact message-pass cost the
// simulator would on a healthy network — the posting and query sets of
// every node are fixed by the strategy, so their spanning-tree multicast
// costs are precomputed once from the routing tables, and each
// rendezvous reply is charged its hop distance back to the client.
//
// Beyond single operations it implements the hot-path acceleration
// seam: Probe (direct hint validation at 2×Dist), a sharded generation
// index for hint invalidation, LocateBatch/PostBatch (shard-grouped
// store access with bulk pass accounting), and an optional
// frequency-weighted mode (strategy.Weighted) in which observed-hot
// ports query a small post-heavy split while their servers post to the
// union of the base and hot posting sets.
//
// Crashes are modelled at the endpoints (a crashed origin cannot post
// or query — sim.ErrCrashed, as on the simulator — and a crashed
// rendezvous node drops postings and does not answer); unlike the
// simulator, in-flight traffic is not charged partial paths through
// crashed interior nodes. That partial-path charging is the one place
// the two transports' accounting can diverge — see the package comment
// and equivalence_test.go.
type MemTransport struct {
	g       *graph.Graph
	routing *graph.Routing
	strat   rendezvous.Strategy
	store   *Store

	// hot holds the precomputed P/Q set/cost tables, the weighted-mode
	// strategy (nil when disabled) and the published hot-port
	// classification — the set-selection logic shared with NetTransport
	// (see setcosts.go).
	hot hotTables

	// rp is the replicated strategy when the transport runs r-fold
	// replicated rendezvous with r > 1 (nil otherwise): reads are then
	// family-scoped through rp.InPost, so the replica families stay
	// independent channels even where their node sets overlap.
	rp *strategy.Replicated

	// The live registration table probes answer from. byID is a
	// copy-on-write snapshot (rebuilt under regMu on every add/drop, a
	// rare heavyweight event) so the probe hot path is one atomic load
	// and a map read — no lock, no allocation, no reader contention.
	// byPort is walked by SetHotPorts to repost newly hot ports; regMu
	// also linearizes registration class decisions against
	// reclassification.
	regMu    sync.Mutex
	byID     atomic.Pointer[map[uint64]*memServer]
	byPort   map[core.Port]map[uint64]*memServer
	gens     *genIndex
	crashed  []atomic.Bool
	passes   stats.StripedCounter
	serverID atomic.Uint64
	events   eventSink

	// elastic is the epoch-versioned membership state (nil on
	// transports built without it — see NewElasticMemTransport): the
	// serving epoch's set/cost tables, chained to the retiring epoch's
	// during a dual-epoch migration. When non-nil it replaces the
	// static hot/rp tables for every set-selection decision; resizeMu
	// serializes the Resize/FinishResize state machine.
	elastic     atomic.Pointer[epochTables]
	resizeMu    sync.Mutex
	migrated    atomic.Int64
	dualLocates atomic.Int64

	// recon holds the anti-entropy counters and the background
	// reconciliation loop (see antientropy.go / antientropy_mem.go).
	recon reconciler

	// forge is the armed Byzantine lie table (nil when disarmed): locate
	// floods consult it per answering node, so an armed node forges or
	// suppresses its answer instead of reading its (healthy) store. See
	// byzantine.go / byzantine_mem.go.
	forge atomic.Pointer[forgeTable]

	scratch sync.Pool // *memScratch, reused by LocateBatch/PostBatch
}

var _ Transport = (*MemTransport)(nil)
var _ HotReclassifier = (*MemTransport)(nil)
var _ ReplicatedTransport = (*MemTransport)(nil)
var _ ElasticTransport = (*MemTransport)(nil)

// memScratch is the reusable workspace of a batched operation: keys
// grouped by store shard plus per-request found flags. Pooled so a
// steady stream of batches allocates nothing.
type memScratch struct {
	keys  []memBatchKey
	found []bool
}

// memBatchKey locates one (rendezvous node, request) store access.
type memBatchKey struct {
	shard uint32
	req   int32
	node  graph.NodeID
}

// NewMemTransport builds the fast path over g with strategy strat. The
// strategy's universe must match the graph size; shards sizes the
// backing store (0 picks a default).
func NewMemTransport(g *graph.Graph, strat rendezvous.Strategy, shards int) (*MemTransport, error) {
	return newMemTransport(g, strat, nil, nil, shards)
}

// NewReplicatedMemTransport builds the fast path in r-fold replicated
// rendezvous mode: servers post to the union of every replica family's
// posting sets (one multicast, charged at the union's tree cost), and a
// locate floods replica 0's query set first, falling through to the
// next family — at one extra flood per attempt — when no rendezvous
// node answered. Replication is mutually exclusive with the weighted
// mode.
func NewReplicatedMemTransport(g *graph.Graph, rp *strategy.Replicated, shards int) (*MemTransport, error) {
	if rp == nil {
		return nil, fmt.Errorf("cluster: replicated transport needs a strategy.Replicated")
	}
	return newMemTransport(g, rp.Base(), nil, rp, shards)
}

// NewElasticMemTransport builds the fast path with epoch-versioned
// elastic membership: the cluster serves initial's active node set (a
// prefix of the graph, optionally r-fold replicated) and can grow or
// shrink it at runtime through Resize/FinishResize while locates keep
// succeeding — the dual-epoch migration of the ElasticTransport
// contract. Elastic membership is mutually exclusive with the weighted
// mode; replication comes from the epoch itself.
func NewElasticMemTransport(g *graph.Graph, initial *strategy.Epoch, shards int) (*MemTransport, error) {
	if initial == nil {
		return nil, fmt.Errorf("cluster: elastic transport needs an initial epoch")
	}
	n := g.N()
	routing, err := graph.NewRouting(g)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	et, err := newEpochTables(g, routing, initial, nil)
	if err != nil {
		return nil, err
	}
	t := &MemTransport{
		g:       g,
		routing: routing,
		strat:   epochStrategyView(initial, n),
		store:   NewStore(n, shards),
		byPort:  make(map[core.Port]map[uint64]*memServer),
		gens:    newGenIndex(),
		crashed: make([]atomic.Bool, n),
	}
	empty := make(map[uint64]*memServer)
	t.byID.Store(&empty)
	t.scratch.New = func() any { return &memScratch{} }
	t.elastic.Store(et)
	return t, nil
}

// epochStrategyView adapts an epoch's family-0 geometry to the
// rendezvous.Strategy interface over the full physical universe, for
// Strategy() reporting on elastic transports.
func epochStrategyView(ep *strategy.Epoch, universe int) rendezvous.Strategy {
	return rendezvous.Funcs{
		StrategyName: ep.Name(),
		Universe:     universe,
		PostFunc:     ep.PostSet,
		QueryFunc:    func(j graph.NodeID) []graph.NodeID { return ep.QuerySet(j, 0) },
	}
}

// NewWeightedMemTransport builds the fast path in frequency-weighted
// mode: cold ports run w.Base(), and ports promoted by SetHotPorts run
// the post-heavy split w.Hot() on the query side while their servers
// post to the union sets — the (M3′) trade executed live. The serving
// layer drives promotion from its port-popularity counters.
func NewWeightedMemTransport(g *graph.Graph, w *strategy.Weighted, shards int) (*MemTransport, error) {
	if w == nil {
		return nil, fmt.Errorf("cluster: weighted transport needs a strategy.Weighted")
	}
	return newMemTransport(g, w.Base(), w, nil, shards)
}

func newMemTransport(g *graph.Graph, strat rendezvous.Strategy, w *strategy.Weighted, rp *strategy.Replicated, shards int) (*MemTransport, error) {
	n := g.N()
	if strat.N() != n {
		return nil, fmt.Errorf("cluster: strategy universe %d != graph size %d", strat.N(), n)
	}
	routing, err := graph.NewRouting(g)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	strat = rendezvous.Precompute(strat)
	sets, err := newStratSets(g, routing, strat, w, rp)
	if err != nil {
		return nil, err
	}
	t := &MemTransport{
		g:       g,
		routing: routing,
		strat:   strat,
		store:   NewStore(n, shards),
		hot:     hotTables{sets: sets, weighted: w},
		byPort:  make(map[core.Port]map[uint64]*memServer),
		gens:    newGenIndex(),
		crashed: make([]atomic.Bool, n),
	}
	if rp != nil && rp.Replicas() > 1 {
		t.rp = rp
	}
	empty := make(map[uint64]*memServer)
	t.byID.Store(&empty)
	t.scratch.New = func() any { return &memScratch{} }
	return t, nil
}

// Name implements Transport.
func (t *MemTransport) Name() string {
	if t.elastic.Load() != nil {
		return "mem-elastic"
	}
	if t.hot.weighted != nil {
		return "mem-weighted"
	}
	if r := t.hot.replicas(); r > 1 {
		return fmt.Sprintf("mem-r%d", r)
	}
	return "mem"
}

// Replicas implements ReplicatedTransport: the replication factor of
// the strategy in use (1 when unreplicated). On an elastic transport
// mid-migration it is the dual-epoch family count — the serving
// epoch's families plus the retiring epoch's appended after them — so
// the ordinary fallthrough loop visits both epochs.
func (t *MemTransport) Replicas() int {
	if et := t.elastic.Load(); et != nil {
		return et.replicas()
	}
	return t.hot.replicas()
}

// N implements Transport.
func (t *MemTransport) N() int { return t.g.N() }

// Store exposes the backing rendezvous cache (for tests and reports).
func (t *MemTransport) Store() *Store { return t.store }

// Strategy returns the (precomputed) base strategy in use.
func (t *MemTransport) Strategy() rendezvous.Strategy { return t.strat }

// Gen implements Transport.
func (t *MemTransport) Gen(port core.Port) uint64 { return t.gens.gen(port) }

func (t *MemTransport) genSlot(port core.Port) *atomic.Uint64 { return t.gens.slot(port) }

// isHot reports whether port currently runs the hot split.
func (t *MemTransport) isHot(port core.Port) bool { return t.hot.isHot(port) }

// canReclassify reports whether SetHotPorts can succeed — i.e. the
// transport was built with a weighted strategy. The cluster checks it
// before starting a reclassification loop, so HotPorts on a plain
// transport fails loudly instead of ticking in vain.
func (t *MemTransport) canReclassify() bool { return t.hot.weighted != nil }

// HotPorts returns the currently published hot classification (for
// tests and reports).
func (t *MemTransport) HotPorts() []core.Port { return t.hot.hotPorts() }

// querySets returns the query flood targets and multicast cost for a
// locate of port from client under the current classification.
func (t *MemTransport) querySets(client graph.NodeID, port core.Port) ([]graph.NodeID, int64) {
	if et := t.elastic.Load(); et != nil {
		targets, cost, _, _, _ := et.queryFor(client, 0)
		return targets, cost
	}
	return t.hot.querySets(client, port)
}

// postSets returns the posting targets and multicast cost for srv
// posting from node: the elastic epoch tables (widened to both epochs'
// union during a migration) when elastic membership is on, else the
// static tables with the shared sticky posted-under-union rule (see
// hotTables.postSets).
func (t *MemTransport) postSets(srv *memServer, node graph.NodeID) ([]graph.NodeID, int64) {
	if et := t.elastic.Load(); et != nil {
		return et.postFor(node)
	}
	return t.hot.postSets(&srv.postedHot, srv.port, node)
}

// memServer is a ServerRef on the fast path.
type memServer struct {
	t    *MemTransport
	port core.Port
	id   uint64

	// postedHot is set the first time the server posts under the union
	// sets and never cleared; see postSets.
	postedHot atomic.Bool

	// state packs (gone << 32 | node) so the probe hot path reads the
	// server's whereabouts with one atomic load; mu serializes writers,
	// which refresh state before releasing it.
	state atomic.Uint64

	mu   sync.Mutex
	node graph.NodeID
	gone bool
}

func newMemServer(t *MemTransport, port core.Port, node graph.NodeID) *memServer {
	srv := &memServer{t: t, port: port, id: t.serverID.Add(1), node: node}
	srv.state.Store(uint64(uint32(node)))
	return srv
}

// loadState returns (node, gone) without taking the server mutex.
func (s *memServer) loadState() (graph.NodeID, bool) {
	st := s.state.Load()
	return graph.NodeID(int32(uint32(st))), st>>32 != 0
}

// storeState republishes state; the caller holds s.mu.
func (s *memServer) storeState() {
	st := uint64(uint32(s.node))
	if s.gone {
		st |= 1 << 32
	}
	s.state.Store(st)
}

// Register implements Transport. On an elastic transport the node must
// be a member of the serving epoch.
func (t *MemTransport) Register(port core.Port, node graph.NodeID) (ServerRef, error) {
	if !t.g.Valid(node) {
		return nil, fmt.Errorf("cluster: register at %d: %w", node, graph.ErrNodeRange)
	}
	if et := t.elastic.Load(); et != nil && !et.ep.Contains(node) {
		return nil, errOutsideMembership(port, node, et.ep)
	}
	srv := newMemServer(t, port, node)
	t.addRegistration(srv)
	// Re-check membership now that the registration is published:
	// addRegistration and Resize's snapshot+publish both hold regMu, so
	// either this server made the snapshot (and Resize validated it) or
	// the epoch loaded here is the post-resize one — a registration
	// racing a shrink cannot slip outside the membership unvalidated.
	if et := t.elastic.Load(); et != nil && !et.ep.Contains(node) {
		t.dropRegistration(srv)
		return nil, errOutsideMembership(port, node, et.ep)
	}
	if err := t.postEntry(srv, node, true); err != nil {
		t.dropRegistration(srv)
		return nil, err
	}
	// A fresh registration can change the freshest-entry winner for the
	// port, so cached hints must re-resolve.
	t.gens.bump(port)
	return srv, nil
}

// addRegistration publishes srv in the live table. Under regMu the
// class decision is linearized against SetHotPorts: either srv reads
// the new classification here, or SetHotPorts finds srv in byPort and
// reposts it.
func (t *MemTransport) addRegistration(srv *memServer) {
	t.regMu.Lock()
	next := cloneByID(*t.byID.Load(), 1)
	next[srv.id] = srv
	t.byID.Store(&next)
	m := t.byPort[srv.port]
	if m == nil {
		m = make(map[uint64]*memServer, 2)
		t.byPort[srv.port] = m
	}
	m[srv.id] = srv
	if t.hot.weighted != nil && t.isHot(srv.port) {
		srv.postedHot.Store(true)
	}
	t.regMu.Unlock()
}

func (t *MemTransport) dropRegistration(srv *memServer) {
	t.regMu.Lock()
	next := cloneByID(*t.byID.Load(), 0)
	delete(next, srv.id)
	t.byID.Store(&next)
	if m := t.byPort[srv.port]; m != nil {
		delete(m, srv.id)
		if len(m) == 0 {
			delete(t.byPort, srv.port)
		}
	}
	t.regMu.Unlock()
}

func cloneByID(cur map[uint64]*memServer, extra int) map[uint64]*memServer {
	next := make(map[uint64]*memServer, len(cur)+extra)
	for k, v := range cur {
		next[k] = v
	}
	return next
}

// PostBatch implements Transport: it validates every registration up
// front, then applies all postings with each store shard locked once
// and charges the summed multicast cost with one atomic add.
func (t *MemTransport) PostBatch(regs []Registration) ([]ServerRef, error) {
	et := t.elastic.Load()
	for _, r := range regs {
		if !t.g.Valid(r.Node) {
			return nil, fmt.Errorf("cluster: register at %d: %w", r.Node, graph.ErrNodeRange)
		}
		if et != nil && !et.ep.Contains(r.Node) {
			return nil, errOutsideMembership(r.Port, r.Node, et.ep)
		}
		if t.crashed[r.Node].Load() {
			return nil, fmt.Errorf("cluster: post %q from %d: %w", r.Port, r.Node, sim.ErrCrashed)
		}
	}
	refs := make([]ServerRef, len(regs))
	servers := make([]*memServer, len(regs))
	entries := make([]core.Entry, len(regs))
	for i, r := range regs {
		servers[i] = newMemServer(t, r.Port, r.Node)
		t.addRegistration(servers[i])
		refs[i] = servers[i]
	}
	// Re-check membership after publishing (see Register): a shrink
	// Resize racing this batch either snapshotted these servers (and
	// validated them) or its epoch is visible here.
	if et := t.elastic.Load(); et != nil {
		for _, r := range regs {
			if !et.ep.Contains(r.Node) {
				for _, srv := range servers {
					t.dropRegistration(srv)
				}
				return nil, errOutsideMembership(r.Port, r.Node, et.ep)
			}
		}
	}
	sc := t.scratch.Get().(*memScratch)
	sc.keys = sc.keys[:0]
	var bulk int64
	for i, r := range regs {
		targets, cost := t.postSets(servers[i], r.Node)
		bulk += cost
		entries[i] = core.Entry{
			Port:     r.Port,
			Addr:     r.Node,
			ServerID: servers[i].id,
			Time:     t.store.NextTime(),
			Active:   true,
		}
		for _, v := range targets {
			if t.crashed[v].Load() {
				continue
			}
			k := storeKey{node: v, port: r.Port}
			sc.keys = append(sc.keys, memBatchKey{shard: t.store.shardIndex(k), req: int32(i), node: v})
		}
	}
	sortBatchKeys(sc.keys)
	for lo := 0; lo < len(sc.keys); {
		hi := lo
		for hi < len(sc.keys) && sc.keys[hi].shard == sc.keys[lo].shard {
			hi++
		}
		sh := &t.store.shards[sc.keys[lo].shard]
		sh.mu.Lock()
		for _, k := range sc.keys[lo:hi] {
			sh.slotCreateLocked(storeKey{node: k.node, port: regs[k.req].Port}).merge(entries[k.req])
		}
		sh.mu.Unlock()
		lo = hi
	}
	t.scratch.Put(sc)
	t.passes.Add(0, bulk)
	for _, r := range regs {
		t.gens.bump(r.Port)
	}
	return refs, nil
}

// postEntry delivers a posting (or tombstone) for srv from-and-about
// node to every live node of its posting set, charging the
// multicast-tree cost. A crashed origin cannot post, matching the
// simulator's multicast.
func (t *MemTransport) postEntry(srv *memServer, node graph.NodeID, active bool) error {
	if t.crashed[node].Load() {
		return fmt.Errorf("cluster: post %q from %d: %w", srv.port, node, sim.ErrCrashed)
	}
	targets, cost := t.postSets(srv, node)
	e := core.Entry{
		Port:     srv.port,
		Addr:     node,
		ServerID: srv.id,
		Time:     t.store.NextTime(),
		Active:   active,
	}
	t.passes.Add(int(node), cost)
	for _, v := range targets {
		if t.crashed[v].Load() {
			continue
		}
		t.store.Put(v, e)
	}
	return nil
}

// Locate implements Transport: it charges the query multicast flood,
// reads every live rendezvous node's cache, charges each hit's reply
// path, and returns the freshest active entry — the same winner the
// engine's collect-window logic converges to. On a replicated transport
// a rendezvous miss falls through the replica families in order, each
// attempt charged its own flood.
func (t *MemTransport) Locate(client graph.NodeID, port core.Port) (core.Entry, error) {
	e, _, err := locateFallthrough(t, client, port, 0)
	return e, err
}

// LocateReplica implements ReplicatedTransport: one query flood over
// replica k's query set only. On an elastic transport the replica index
// spans both live epochs' families (the retiring epoch's appended after
// the serving one's), so the ordinary fallthrough is also the
// dual-epoch locate.
func (t *MemTransport) LocateReplica(client graph.NodeID, port core.Port, replica int) (core.Entry, error) {
	e, _, err := t.locateReplicaFrom(client, port, replica)
	return e, err
}

// locateReplicaFrom is LocateReplica plus answer attribution: it also
// returns the rendezvous node whose entry won the freshest reduction,
// which the cluster's voting mode needs to know whom to quarantine.
func (t *MemTransport) locateReplicaFrom(client graph.NodeID, port core.Port, replica int) (core.Entry, graph.NodeID, error) {
	if !t.g.Valid(client) {
		return core.Entry{}, 0, fmt.Errorf("cluster: locate from %d: %w", client, graph.ErrNodeRange)
	}
	if t.crashed[client].Load() {
		return core.Entry{}, 0, fmt.Errorf("cluster: locate from %d: %w", client, sim.ErrCrashed)
	}
	var (
		targets []graph.NodeID
		cost    int64
		at      graph.NodeID
		keep    func(core.Entry) bool
		dual    bool
	)
	if et := t.elastic.Load(); et != nil {
		etargets, ecost, tab, fam, ok := et.queryFor(client, replica)
		if !ok {
			// FinishResize raced an in-flight fallthrough: the family's
			// epoch is retired — a silent miss, not a hard failure.
			return core.Entry{}, 0, errRetiredReplica(port, client, replica)
		}
		if len(etargets) == 0 {
			// The client is outside this family's epoch: nothing to
			// flood, nothing to charge.
			return core.Entry{}, 0, errMissingEpochFlood(port, client)
		}
		targets, cost, dual = etargets, ecost, tab != et
		keep = func(e core.Entry) bool { return tab.ep.InPost(fam, e.Addr, at) }
	} else {
		if replica < 0 || replica >= t.Replicas() {
			return core.Entry{}, 0, fmt.Errorf("cluster: replica %d out of [0,%d)", replica, t.Replicas())
		}
		targets, cost = t.hot.replicaQuerySets(client, port, replica)
		if t.rp != nil {
			// Family-scope the read: node at only answers a family-k query
			// with postings it holds as a member of Pₖ(origin).
			keep = func(e core.Entry) bool { return t.rp.InPost(replica, e.Addr, at) }
		}
	}
	t.passes.Add(int(client), cost)
	ft := t.forgeLoad()
	var (
		best  core.Entry
		from  graph.NodeID
		found bool
	)
	for _, v := range targets {
		if t.crashed[v].Load() {
			continue
		}
		at = v
		var (
			e  core.Entry
			ok bool
		)
		if rec, armed := ft.lieFor(v, port); armed {
			// An armed node never consults its store: it forges or
			// suppresses. The forged entry faces the same family filter an
			// honest answer would.
			if rec.silent {
				continue
			}
			e, ok = rec.e, keep == nil || keep(rec.e)
		} else {
			e, ok = t.store.GetWhere(v, port, keep)
		}
		if !ok {
			continue // misses are silent, as in §1.5
		}
		t.passes.Add(int(client), int64(t.routing.Dist(v, client)))
		if !found || e.Time > best.Time {
			best, from, found = e, v, true
		}
	}
	if !found {
		return core.Entry{}, 0, fmt.Errorf("cluster: locate %q from %d: %w", port, client, core.ErrNotFound)
	}
	if dual {
		t.dualLocates.Add(1)
	}
	return best, from, nil
}

// LocateBatch implements Transport: the batch's store accesses are
// grouped by shard so each shard lock is taken once, and the whole
// batch's passes land in one atomic add. Answers and total cost are
// identical to the equivalent sequence of Locate calls — including, on
// a replicated transport, the per-request replica fallthrough: misses
// of one pass are re-floods over the next family as a sub-batch.
func (t *MemTransport) LocateBatch(reqs []LocateReq, res []LocateRes) {
	n := len(reqs)
	if len(res) < n {
		n = len(res)
	}
	t.locateBatchReplica(reqs[:n], res[:n], 0)
	if r := t.Replicas(); r > 1 {
		batchFallthrough(reqs[:n], res[:n], r, t.locateBatchReplica)
	}
}

// batchFallthrough re-runs the not-found requests of a batch against
// each remaining replica family in order, scattering the sub-batch
// results back — the batched form of locateFallthrough, shared by the
// mem and net transports.
func batchFallthrough(reqs []LocateReq, res []LocateRes, replicas int, pass func([]LocateReq, []LocateRes, int)) {
	var (
		retryReqs []LocateReq
		retryIdx  []int
		retryRes  []LocateRes
	)
	for k := 1; k < replicas; k++ {
		retryReqs, retryIdx = retryReqs[:0], retryIdx[:0]
		for i := range res {
			if res[i].Err != nil && errors.Is(res[i].Err, core.ErrNotFound) {
				retryReqs = append(retryReqs, reqs[i])
				retryIdx = append(retryIdx, i)
			}
		}
		if len(retryReqs) == 0 {
			return
		}
		if cap(retryRes) < len(retryReqs) {
			retryRes = make([]LocateRes, len(retryReqs))
		}
		rr := retryRes[:len(retryReqs)]
		pass(retryReqs, rr, k)
		for j, i := range retryIdx {
			res[i] = rr[j]
		}
	}
}

// locateBatchReplica runs one shard-grouped batch pass over replica k's
// query sets (dual-epoch family indexing on elastic transports); reqs
// and res have equal length.
func (t *MemTransport) locateBatchReplica(reqs []LocateReq, res []LocateRes, replica int) {
	n := len(reqs)
	et := t.elastic.Load()
	var (
		etab *epochTables
		efam int
	)
	if et != nil {
		tab, fam, ok := et.resolve(replica)
		if !ok {
			// The family's epoch retired mid-batch: every request of this
			// pass is a silent miss.
			for i := 0; i < n; i++ {
				res[i] = LocateRes{Err: errRetiredReplica(reqs[i].Port, reqs[i].Client, replica)}
			}
			return
		}
		etab, efam = tab, fam
	}
	sc := t.scratch.Get().(*memScratch)
	sc.keys = sc.keys[:0]
	if cap(sc.found) < n {
		sc.found = make([]bool, n)
	}
	sc.found = sc.found[:n]
	for i := range sc.found {
		sc.found[i] = false
	}
	var bulk int64
	for i := 0; i < n; i++ {
		r := reqs[i]
		res[i] = LocateRes{}
		if !t.g.Valid(r.Client) {
			res[i].Err = fmt.Errorf("cluster: locate from %d: %w", r.Client, graph.ErrNodeRange)
			continue
		}
		if t.crashed[r.Client].Load() {
			res[i].Err = fmt.Errorf("cluster: locate from %d: %w", r.Client, sim.ErrCrashed)
			continue
		}
		var (
			targets []graph.NodeID
			cost    int64
		)
		if etab != nil {
			targets, cost = etab.query[efam][r.Client], etab.queryCost[efam][r.Client]
			if len(targets) == 0 {
				res[i].Err = errMissingEpochFlood(r.Port, r.Client)
				continue
			}
		} else {
			targets, cost = t.hot.replicaQuerySets(r.Client, r.Port, replica)
		}
		bulk += cost
		for _, v := range targets {
			if t.crashed[v].Load() {
				continue
			}
			k := storeKey{node: v, port: r.Port}
			sc.keys = append(sc.keys, memBatchKey{shard: t.store.shardIndex(k), req: int32(i), node: v})
		}
	}
	sortBatchKeys(sc.keys)
	ft := t.forgeLoad()
	var (
		at   graph.NodeID
		keep func(core.Entry) bool
	)
	if etab != nil {
		keep = func(e core.Entry) bool { return etab.ep.InPost(efam, e.Addr, at) }
	} else if t.rp != nil {
		keep = func(e core.Entry) bool { return t.rp.InPost(replica, e.Addr, at) }
	}
	for lo := 0; lo < len(sc.keys); {
		hi := lo
		for hi < len(sc.keys) && sc.keys[hi].shard == sc.keys[lo].shard {
			hi++
		}
		sh := &t.store.shards[sc.keys[lo].shard]
		sh.mu.RLock()
		for _, k := range sc.keys[lo:hi] {
			var (
				e  core.Entry
				ok bool
			)
			if rec, armed := ft.lieFor(k.node, reqs[k.req].Port); armed {
				// Armed node: forge or suppress instead of reading the
				// store, exactly as on the single-locate path.
				if rec.silent {
					continue
				}
				at = k.node
				e, ok = rec.e, keep == nil || keep(rec.e)
			} else {
				sl := sh.slotLocked(storeKey{node: k.node, port: reqs[k.req].Port})
				if sl == nil {
					continue
				}
				at = k.node
				e, ok = sl.readFreshestWhere(keep)
			}
			if !ok {
				continue
			}
			bulk += int64(t.routing.Dist(k.node, reqs[k.req].Client))
			if !sc.found[k.req] || e.Time > res[k.req].Entry.Time {
				res[k.req].Entry = e
				sc.found[k.req] = true
			}
		}
		sh.mu.RUnlock()
		lo = hi
	}
	var dual int64
	for i := 0; i < n; i++ {
		if res[i].Err == nil && !sc.found[i] {
			res[i].Err = fmt.Errorf("cluster: locate %q from %d: %w", reqs[i].Port, reqs[i].Client, core.ErrNotFound)
		} else if res[i].Err == nil && etab != nil && etab != et {
			dual++
		}
	}
	if dual > 0 {
		t.dualLocates.Add(dual)
	}
	t.scratch.Put(sc)
	t.passes.Add(0, bulk)
}

// sortBatchKeys orders keys by shard. Locate batches are small and
// mostly pre-clustered, where insertion sort wins and stays
// allocation-free; large batches (a PostBatch registering thousands of
// services) fall back to the O(k log k) generic sort, which is also
// allocation-free.
func sortBatchKeys(keys []memBatchKey) {
	if len(keys) > 128 {
		slices.SortFunc(keys, func(a, b memBatchKey) int {
			return int(a.shard) - int(b.shard)
		})
		return
	}
	for i := 1; i < len(keys); i++ {
		k := keys[i]
		j := i - 1
		for j >= 0 && keys[j].shard > k.shard {
			keys[j+1] = keys[j]
			j--
		}
		keys[j+1] = k
	}
}

// Probe implements Transport: one direct request to the hinted address
// and one reply back, 2×Dist(client, e.Addr) passes — against a full
// query flood for a locate. The answer comes from the live registration
// table, the way a real host knows its own processes: hit iff the
// probed instance is live and still resides at e.Addr. A crashed
// address swallows the request (one-way charge only, fail-stop at the
// endpoint, like every other mem-path crash interaction).
func (t *MemTransport) Probe(client graph.NodeID, e core.Entry) (core.Entry, error) {
	if !t.g.Valid(client) {
		return core.Entry{}, fmt.Errorf("cluster: probe from %d: %w", client, graph.ErrNodeRange)
	}
	if !t.g.Valid(e.Addr) {
		return core.Entry{}, fmt.Errorf("cluster: probe at %d: %w", e.Addr, graph.ErrNodeRange)
	}
	if t.crashed[client].Load() {
		return core.Entry{}, fmt.Errorf("cluster: probe from %d: %w", client, sim.ErrCrashed)
	}
	d := int64(t.routing.Dist(client, e.Addr))
	if t.crashed[e.Addr].Load() {
		t.passes.Add(int(client), d) // request swallowed by the crash
		return core.Entry{}, fmt.Errorf("cluster: probe %q at %d: %w", e.Port, e.Addr, sim.ErrCrashed)
	}
	t.passes.Add(int(client), 2*d) // request + reply (positive or negative)
	srv := (*t.byID.Load())[e.ServerID]
	if srv != nil && srv.port == e.Port {
		if node, gone := srv.loadState(); !gone && node == e.Addr {
			return core.Entry{Port: e.Port, Addr: e.Addr, ServerID: e.ServerID, Time: e.Time, Active: true}, nil
		}
	}
	return core.Entry{}, fmt.Errorf("cluster: probe %q at %d: %w", e.Port, e.Addr, core.ErrNotFound)
}

// LocateAll implements Transport, falling through the replica families
// like Locate when no rendezvous node of a family answers.
func (t *MemTransport) LocateAll(client graph.NodeID, port core.Port) ([]core.Entry, error) {
	return locateAllFallthrough(t.Replicas(), func(k int) ([]core.Entry, error) {
		return t.locateAllReplica(client, port, k)
	})
}

// locateAllReplica is one locate-all flood over replica k's query set
// (dual-epoch family indexing on elastic transports).
func (t *MemTransport) locateAllReplica(client graph.NodeID, port core.Port, replica int) ([]core.Entry, error) {
	if !t.g.Valid(client) {
		return nil, fmt.Errorf("cluster: locate-all from %d: %w", client, graph.ErrNodeRange)
	}
	if t.crashed[client].Load() {
		return nil, fmt.Errorf("cluster: locate-all from %d: %w", client, sim.ErrCrashed)
	}
	var (
		targets []graph.NodeID
		cost    int64
		etab    *epochTables
		efam    int
	)
	if et := t.elastic.Load(); et != nil {
		etargets, ecost, tab, fam, ok := et.queryFor(client, replica)
		if !ok {
			return nil, errRetiredReplica(port, client, replica)
		}
		if len(etargets) == 0 {
			return nil, errMissingEpochFlood(port, client)
		}
		targets, cost, etab, efam = etargets, ecost, tab, fam
	} else {
		targets, cost = t.hot.replicaQuerySets(client, port, replica)
	}
	t.passes.Add(int(client), cost)
	ft := t.forgeLoad()
	freshest := make(map[uint64]core.Entry, 4)
	var buf [8]core.Entry
	for _, v := range targets {
		if t.crashed[v].Load() {
			continue
		}
		var entries []core.Entry
		if rec, armed := ft.lieFor(v, port); armed {
			// Armed node: its locate-all answer is the single forged entry
			// (or nothing under selective silence), never its real rows.
			if rec.silent {
				continue
			}
			entries = append(buf[:0], rec.e)
		} else {
			entries = t.store.GetAllInto(v, port, buf[:0])
		}
		if etab != nil {
			// Family-scope the replies to the resolved epoch's family.
			kept := entries[:0]
			for _, e := range entries {
				if etab.ep.InPost(efam, e.Addr, v) {
					kept = append(kept, e)
				}
			}
			entries = kept
		} else if t.rp != nil {
			// Family-scope the replies: only entries posted here as part
			// of this replica family answer (and are charged).
			kept := entries[:0]
			for _, e := range entries {
				if t.rp.InPost(replica, e.Addr, v) {
					kept = append(kept, e)
				}
			}
			entries = kept
		}
		if len(entries) == 0 {
			continue
		}
		t.passes.Add(int(client), int64(t.routing.Dist(v, client))*int64(len(entries)))
		for _, e := range entries {
			if cur, ok := freshest[e.ServerID]; !ok || e.Time > cur.Time {
				freshest[e.ServerID] = e
			}
		}
	}
	var out []core.Entry
	for _, e := range freshest {
		if e.Active {
			out = append(out, e)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cluster: locate-all %q from %d: %w", port, client, core.ErrNotFound)
	}
	return out, nil
}

// SetHotPorts implements HotReclassifier on a weighted transport: the
// listed ports are promoted to the post-heavy hot split and all others
// demoted to the base strategy. Newly hot ports have their live servers
// reposted under the union sets *before* the classification is
// published, so a hot query never races ahead of the postings it needs;
// demoted ports are safe immediately because union ⊇ base. The repost
// traffic is charged like any other posting.
func (t *MemTransport) SetHotPorts(ports []core.Port) error {
	if t.hot.weighted == nil {
		return fmt.Errorf("cluster: transport %q has no weighted strategy", t.Name())
	}
	newHot := make(map[core.Port]bool, len(ports))
	for _, p := range ports {
		newHot[p] = true
	}
	t.regMu.Lock()
	defer t.regMu.Unlock()
	var errs []error
	for p := range newHot {
		if t.isHot(p) {
			continue // already hot; servers already post union
		}
		for _, srv := range t.byPort[p] {
			node, gone := srv.loadState()
			if gone {
				continue
			}
			srv.postedHot.Store(true)
			if err := t.postEntry(srv, node, true); err != nil {
				// A crashed origin cannot repost; its stale base-set
				// postings stay visible to base queries only, exactly as
				// if the port had stayed cold for that server.
				errs = append(errs, err)
			}
		}
	}
	t.hot.publish(&newHot)
	return errors.Join(errs...)
}

// Elastic implements ElasticTransport.
func (t *MemTransport) Elastic() bool { return t.elastic.Load() != nil }

// Epoch implements ElasticTransport: the serving epoch's sequence
// number (0 when elastic membership is off).
func (t *MemTransport) Epoch() uint64 {
	if et := t.elastic.Load(); et != nil {
		return et.ep.Seq()
	}
	return 0
}

// Resizing implements ElasticTransport.
func (t *MemTransport) Resizing() bool {
	et := t.elastic.Load()
	return et != nil && et.prev != nil
}

// MigratedPosts implements ElasticTransport.
func (t *MemTransport) MigratedPosts() int64 { return t.migrated.Load() }

// DualEpochLocates implements ElasticTransport.
func (t *MemTransport) DualEpochLocates() int64 { return t.dualLocates.Load() }

// Resize implements ElasticTransport: it installs next as the serving
// epoch, widens the posting tables to both epochs' union, and re-posts
// every live server's entry to exactly the rendezvous nodes the
// minimal-movement remap added — each delta charged its multicast-tree
// cost, the honest price of the migration. Hint generations are bumped
// only for the ports whose postings moved. The registration lock is
// held across the server snapshot and the table publish, so a racing
// Register either lands in the snapshot (and is migrated) or posts
// under the new tables.
func (t *MemTransport) Resize(next *strategy.Epoch) (int, error) {
	if t.elastic.Load() == nil {
		return 0, ErrNotElastic
	}
	t.resizeMu.Lock()
	defer t.resizeMu.Unlock()
	cur := t.elastic.Load()
	if cur.prev != nil {
		return 0, fmt.Errorf("cluster: resize to epoch %d: migration from epoch %d still draining", next.Seq(), cur.prev.ep.Seq())
	}
	if err := validateNextEpoch(cur.ep, next, t.g.N()); err != nil {
		return 0, err
	}
	nt, err := newEpochTables(t.g, t.routing, next, cur)
	if err != nil {
		return 0, err
	}
	t.regMu.Lock()
	servers := make([]*memServer, 0, len(*t.byID.Load()))
	for _, srv := range *t.byID.Load() {
		node, gone := srv.loadState()
		if gone {
			continue
		}
		if !next.Contains(node) {
			t.regMu.Unlock()
			return 0, errServerOutsideEpoch(srv.port, node, next)
		}
		servers = append(servers, srv)
	}
	t.elastic.Store(nt)
	t.regMu.Unlock()

	moved := 0
	movedPorts := make(map[core.Port]bool)
	for _, srv := range servers {
		// Hold the server's mutex across the liveness check AND the
		// delta re-post: the migration posting carries a fresh
		// timestamp, so letting it race a concurrent Deregister or
		// Migrate could stamp an Active entry fresher than the
		// lifecycle operation's tombstone and resurrect the server.
		srv.mu.Lock()
		if srv.gone {
			srv.mu.Unlock()
			continue
		}
		node := srv.node
		added := nt.rm.Added(node)
		if len(added) == 0 {
			srv.mu.Unlock()
			continue
		}
		err := t.postEntryVia(srv, node, added)
		srv.mu.Unlock()
		if err != nil {
			continue // a crashed origin cannot migrate its postings
		}
		moved += len(added)
		movedPorts[srv.port] = true
	}
	for port := range movedPorts {
		t.gens.bump(port)
	}
	t.migrated.Add(int64(moved))
	return moved, nil
}

// postEntryVia posts a fresh live entry for srv to an explicit target
// set, charged at that set's multicast-tree cost — the delta re-post of
// an epoch migration.
func (t *MemTransport) postEntryVia(srv *memServer, node graph.NodeID, targets []graph.NodeID) error {
	if t.crashed[node].Load() {
		return fmt.Errorf("cluster: post %q from %d: %w", srv.port, node, sim.ErrCrashed)
	}
	cost, err := t.routing.MulticastCost(node, targets)
	if err != nil {
		return err
	}
	e := core.Entry{
		Port:     srv.port,
		Addr:     node,
		ServerID: srv.id,
		Time:     t.store.NextTime(),
		Active:   true,
	}
	t.passes.Add(int(node), int64(cost))
	for _, v := range targets {
		if t.crashed[v].Load() {
			continue
		}
		t.store.Put(v, e)
	}
	return nil
}

// FinishResize implements ElasticTransport: the dual-epoch phase ends —
// new locates stop falling through to the old epoch — and every live
// server's postings at old-epoch-only rendezvous nodes expire in place,
// a local garbage collection that costs no message passes.
func (t *MemTransport) FinishResize() error {
	if t.elastic.Load() == nil {
		return ErrNotElastic
	}
	t.resizeMu.Lock()
	defer t.resizeMu.Unlock()
	cur := t.elastic.Load()
	if cur.prev == nil {
		return fmt.Errorf("cluster: no resize in progress")
	}
	t.regMu.Lock()
	t.elastic.Store(cur.retired())
	t.regMu.Unlock()
	for _, srv := range *t.byID.Load() {
		node, gone := srv.loadState()
		if gone {
			continue
		}
		for _, v := range cur.rm.Removed(node) {
			t.store.Drop(v, srv.port, srv.id)
		}
	}
	return nil
}

// Crash implements Transport: the node stops accepting postings and
// answering queries, and its volatile cache is lost. Every hint
// generation is bumped — the crashed node may have hosted any port.
func (t *MemTransport) Crash(node graph.NodeID) error {
	if !t.g.Valid(node) {
		return fmt.Errorf("cluster: crash %d: %w", node, graph.ErrNodeRange)
	}
	t.crashed[node].Store(true)
	t.store.ClearNode(node)
	t.gens.bumpAll()
	t.events.emit(Event{Type: EvCrash, Node: node})
	return nil
}

// Restore implements Transport.
func (t *MemTransport) Restore(node graph.NodeID) error {
	if !t.g.Valid(node) {
		return fmt.Errorf("cluster: restore %d: %w", node, graph.ErrNodeRange)
	}
	t.crashed[node].Store(false)
	t.events.emit(Event{Type: EvRestore, Node: node})
	return nil
}

// SetEventSink implements EventSource: crash and restore marks are
// pushed to the sink as EvCrash/EvRestore events.
func (t *MemTransport) SetEventSink(fn EventSink) { t.events.set(fn) }

// Passes implements Transport.
func (t *MemTransport) Passes() int64 { return t.passes.Load() }

// ResetPasses implements Transport.
func (t *MemTransport) ResetPasses() { t.passes.Reset() }

// Close implements Transport: it stops the background reconciliation
// loop, if one was started.
func (t *MemTransport) Close() error {
	t.recon.halt()
	return nil
}

// Port implements ServerRef.
func (s *memServer) Port() core.Port { return s.port }

// Node implements ServerRef.
func (s *memServer) Node() graph.NodeID {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.node
}

// Repost implements ServerRef.
func (s *memServer) Repost() error {
	s.mu.Lock()
	node, gone := s.node, s.gone
	s.mu.Unlock()
	if gone {
		return core.ErrServerGone
	}
	return s.t.postEntry(s, node, true)
}

// Migrate implements ServerRef: tombstone first (the stale address must
// lose), then announce the new address with a fresher timestamp. As in
// the engine, a crashed old host cannot tombstone, but the fresh
// posting's newer timestamp still wins wherever both are seen. The
// port's hint generation is bumped so cached addresses re-resolve.
func (s *memServer) Migrate(to graph.NodeID) error {
	if !s.t.g.Valid(to) {
		return fmt.Errorf("cluster: migrate to %d: %w", to, graph.ErrNodeRange)
	}
	if et := s.t.elastic.Load(); et != nil && !et.ep.Contains(to) {
		return errOutsideMembership(s.port, to, et.ep)
	}
	s.mu.Lock()
	if s.gone {
		s.mu.Unlock()
		return core.ErrServerGone
	}
	from := s.node
	s.node = to
	s.storeState()
	s.mu.Unlock()
	defer s.t.gens.bump(s.port)
	tombErr := s.t.postEntry(s, from, false)
	if err := s.t.postEntry(s, to, true); err != nil {
		return errors.Join(tombErr, err)
	}
	return nil
}

// Deregister implements ServerRef. The registration leaves the live
// table before the tombstone posts, so a probe can never confirm a
// deregistered instance.
func (s *memServer) Deregister() error {
	s.mu.Lock()
	if s.gone {
		s.mu.Unlock()
		return core.ErrServerGone
	}
	s.gone = true
	node := s.node
	s.storeState()
	s.mu.Unlock()
	s.t.dropRegistration(s)
	s.t.gens.bump(s.port)
	return s.t.postEntry(s, node, false)
}
