package cluster

import (
	"sync"
	"sync/atomic"

	"matchmake/internal/core"
	"matchmake/internal/graph"
)

// hintCache is the per-client address cache of the hot-path
// acceleration layer: a successful locate records the winning entry
// keyed by (client, port) together with the transport generation it was
// resolved under. A later locate for the same pair validates the hint
// with one direct probe (2×Dist passes) instead of a full P∩Q flood,
// provided the generation still matches; otherwise it falls back to the
// flood and refreshes the hint.
//
// The hit path is allocation- and hash-free: clients index an array
// directly, the port lookup is one read-locked map access, and the
// generation check is one atomic load through the pointer captured at
// put time. Slots are never deleted — the cache is naturally bounded by
// (#clients) × (#ports), the same universe the transports already
// precompute sets for.
type hintCache struct {
	clients []hintShard
}

// hintShard holds one client's hints behind a copy-on-write map: the
// lookup path is one atomic pointer load and a map read (no read-side
// lock RMW at all); inserts — once per (client, port) lifetime — clone
// the map under mu. Padded so adjacent clients' slots do not
// false-share a cache line.
type hintShard struct {
	m  atomic.Pointer[map[core.Port]*hintSlot]
	mu sync.Mutex
	_  [48]byte // 8 (pointer) + 8 (mutex) + 48 = one 64-byte line
}

type hintSlot struct {
	v atomic.Pointer[hintVal]
}

// hintVal is one immutable hint snapshot. genSlot points at the
// generation counter the hint was resolved under (nil when the
// transport exposes no slots; the caller then compares against
// Transport.Gen). dead marks a hint whose probe failed: the next locate
// for the pair skips straight to the flood, and the flood only revives
// the slot when it resolves to a different server or a newer generation
// — so a stale address costs at most one wasted probe per generation.
// replica records which replica family resolved the entry (0 on
// unreplicated transports): when a crash invalidates the hint, the
// fallback flood retries the next family before re-flooding this one.
type hintVal struct {
	entry   core.Entry
	gen     uint64
	genSlot *atomic.Uint64
	replica int
	dead    bool
}

// stale reports whether the hint's generation no longer matches.
func (hv *hintVal) stale(tr Transport) bool {
	if hv.genSlot != nil {
		return hv.genSlot.Load() != hv.gen
	}
	return tr.Gen(hv.entry.Port) != hv.gen
}

// newHintCache builds a cache for clients 0..n-1.
func newHintCache(n int) *hintCache {
	return &hintCache{clients: make([]hintShard, n)}
}

// lookup returns (slot, value); slot is nil when the pair was never
// cached, value is nil when the slot exists but holds nothing yet.
func (h *hintCache) lookup(client graph.NodeID, port core.Port) (*hintSlot, *hintVal) {
	if int(client) < 0 || int(client) >= len(h.clients) {
		return nil, nil
	}
	sh := &h.clients[client]
	mp := sh.m.Load()
	if mp == nil {
		return nil, nil
	}
	sl := (*mp)[port]
	if sl == nil {
		return nil, nil
	}
	return sl, sl.v.Load()
}

// put records a flood-resolved entry under gen (read from genSlot, when
// the transport exposes one, before the flood began) together with the
// replica family that resolved it. If the slot currently holds a dead
// hint for the same generation and the same server instance, the slot
// stays dead: re-arming it would buy one failed probe per locate until
// something bumps the generation.
func (h *hintCache) put(client graph.NodeID, port core.Port, e core.Entry, gen uint64, genSlot *atomic.Uint64, replica int) {
	if int(client) < 0 || int(client) >= len(h.clients) {
		return
	}
	sh := &h.clients[client]
	var sl *hintSlot
	if mp := sh.m.Load(); mp != nil {
		sl = (*mp)[port]
	}
	if sl == nil {
		sh.mu.Lock()
		cur := sh.m.Load()
		if cur != nil {
			sl = (*cur)[port]
		}
		if sl == nil {
			sl = &hintSlot{}
			next := make(map[core.Port]*hintSlot, 8)
			if cur != nil {
				for k, v := range *cur {
					next[k] = v
				}
			}
			next[port] = sl
			sh.m.Store(&next)
		}
		sh.mu.Unlock()
	}
	cur := sl.v.Load()
	if cur != nil && cur.dead && cur.gen == gen &&
		cur.entry.Addr == e.Addr && cur.entry.ServerID == e.ServerID {
		return
	}
	sl.v.Store(&hintVal{entry: e, gen: gen, genSlot: genSlot, replica: replica})
}

// markDead flags a probed-and-missed hint so later locates skip the
// probe until the generation moves or the flood finds a new server.
func (h *hintCache) markDead(sl *hintSlot, was *hintVal) {
	dead := *was
	dead.dead = true
	sl.v.CompareAndSwap(was, &dead)
}
