package cluster

import (
	"matchmake/internal/core"
	"matchmake/internal/graph"
)

// Byzantine seam of the fast path: the armed lie table swaps in
// atomically and the locate paths (single, batch, locate-all) consult
// it per answering rendezvous node — see the hooks in memtransport.go.

var _ ByzantineTransport = (*MemTransport)(nil)

// forgeLoad returns the armed lie table, or a nil table when disarmed
// (nil-safe for lookups).
func (t *MemTransport) forgeLoad() forgeTable {
	p := t.forge.Load()
	if p == nil {
		return nil
	}
	return *p
}

// Arm implements ByzantineTransport: it derives the deterministic
// forgery plan from the live registration table (the same ground truth,
// in the same order, as the anti-entropy corruption injector uses) and
// installs it. Every hint generation is bumped — cached addresses must
// re-verify against the newly hostile cluster.
func (t *MemTransport) Arm(opts ArmOptions) (int, error) {
	plan := buildForgePlan(opts, t.corruptRegs(), t.g.N(), t.rp)
	ft := buildForgeTable(plan)
	t.forge.Store(&ft)
	t.gens.bumpAll()
	return len(plan), nil
}

// Disarm implements ByzantineTransport.
func (t *MemTransport) Disarm() error {
	t.forge.Store(nil)
	t.gens.bumpAll()
	return nil
}

// ArmedNodes implements ByzantineTransport.
func (t *MemTransport) ArmedNodes() []graph.NodeID {
	return t.forgeLoad().nodes()
}

// LocateReplicaAt implements ByzantineTransport.
func (t *MemTransport) LocateReplicaAt(client graph.NodeID, port core.Port, replica int) (core.Entry, graph.NodeID, error) {
	return t.locateReplicaFrom(client, port, replica)
}

// Quarantine implements ByzantineTransport: hint invalidation only —
// the node keeps serving (and keeps lying if armed); the cluster's
// suspect set is what steers votes and re-quarantines repeat offenders.
func (t *MemTransport) Quarantine(graph.NodeID) {
	t.gens.bumpAll()
}
