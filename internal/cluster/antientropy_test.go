package cluster

import (
	"testing"
	"time"

	"matchmake/internal/core"
	"matchmake/internal/graph"
	"matchmake/internal/rendezvous"
	"matchmake/internal/topology"
)

// TestRowDiff pins the diff semantics every transport's reconcile round
// shares: orphans drop in place, wrong addresses drop and re-post,
// missing entries drop (clearing masks) and re-post, tombstones are
// invisible.
func TestRowDiff(t *testing.T) {
	exp := make(expectedRow)
	exp.add("alpha", 1, 5)
	exp.add("beta", 2, 7)
	exp.add("gamma", 3, 9)
	actual := []core.Entry{
		{Port: "alpha", ServerID: 1, Addr: 5, Time: 3, Active: true},  // correct
		{Port: "beta", ServerID: 2, Addr: 8, Time: 4, Active: true},   // wrong addr
		{Port: "delta", ServerID: 9, Addr: 1, Time: 2, Active: true},  // orphan
		{Port: "gamma", ServerID: 3, Addr: 9, Time: 1, Active: false}, // tombstone: ignored, so gamma is missing
	}
	drops, reposts := rowDiff(exp, actual)
	wantDrops := map[expectedPair]bool{
		{port: "beta", id: 2}:  true,
		{port: "delta", id: 9}: true,
		{port: "gamma", id: 3}: true,
	}
	wantReposts := map[expectedPair]bool{
		{port: "beta", id: 2}:  true,
		{port: "gamma", id: 3}: true,
	}
	if len(drops) != len(wantDrops) {
		t.Fatalf("drops = %v, want %v", drops, wantDrops)
	}
	for _, d := range drops {
		if !wantDrops[d] {
			t.Fatalf("unexpected drop %+v", d)
		}
	}
	if len(reposts) != len(wantReposts) {
		t.Fatalf("reposts = %v, want %v", reposts, wantReposts)
	}
	for _, r := range reposts {
		if !wantReposts[r] {
			t.Fatalf("unexpected repost %+v", r)
		}
	}

	// A fully converged row diffs to nothing, and its xor digest matches
	// the expected digest (the cheap check that skips the dump).
	converged := []core.Entry{
		{Port: "alpha", ServerID: 1, Addr: 5, Time: 3, Active: true},
		{Port: "beta", ServerID: 2, Addr: 7, Time: 9, Active: true},
		{Port: "gamma", ServerID: 3, Addr: 9, Time: 1, Active: true},
	}
	drops, reposts = rowDiff(exp, converged)
	if len(drops) != 0 || len(reposts) != 0 {
		t.Fatalf("converged row: drops=%v reposts=%v, want none", drops, reposts)
	}
	var d uint64
	for _, e := range converged {
		d ^= postingDigest(e.Port, e.ServerID, e.Addr)
	}
	if d != exp.digest() {
		t.Fatalf("converged digest %x != expected %x", d, exp.digest())
	}
	// Digests ignore timestamps: re-posting with a fresh clock must not
	// flip the row back to "mismatched".
	if postingDigest("alpha", 1, 5) != postingDigest("alpha", 1, 5) {
		t.Fatal("postingDigest not deterministic")
	}
}

// TestAntiEntropyConvergence is the tentpole gate: a cluster seeded with
// every corruption class — a missing posting, an orphaned duplicate, a
// duplicate parked under the wrong port, a stale-epoch address and a
// bit-flipped entry whose poisoned timestamp the §2.1 merge rule would
// otherwise protect forever — reconciles back to the registration
// ground truth within one round (quiescent by round two), and the
// simulator and fast path charge exactly the same passes for the repair
// traffic.
func TestAntiEntropyConvergence(t *testing.T) {
	for _, tc := range equivalenceCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			simT, err := NewSimTransport(tc.g, tc.strat, fastOpts)
			if err != nil {
				t.Fatal(err)
			}
			defer simT.Close()
			memT, err := NewMemTransport(tc.g, tc.strat, 0)
			if err != nil {
				t.Fatal(err)
			}
			defer memT.Close()

			n := tc.g.N()
			script := []struct {
				port   core.Port
				server graph.NodeID
			}{
				{"alpha", graph.NodeID(n / 3)},
				{"beta", graph.NodeID(n - 1)},
				{"gamma", 0},
			}
			simRefs := make(map[core.Port]ServerRef)
			memRefs := make(map[core.Port]ServerRef)
			for _, sc := range script {
				r1, err := simT.Register(sc.port, sc.server)
				if err != nil {
					t.Fatal(err)
				}
				r2, err := memT.Register(sc.port, sc.server)
				if err != nil {
					t.Fatal(err)
				}
				simRefs[sc.port], memRefs[sc.port] = r1, r2
			}
			simT.Network().Drain()

			alphaNode := graph.NodeID(n / 3)
			betaNode := graph.NodeID(n - 1)
			aT := tc.strat.Post(alphaNode)
			if len(aT) < 3 {
				t.Fatalf("need |P(alpha)| >= 3 to seed distinct corruption classes, got %d", len(aT))
			}
			bT := tc.strat.Post(betaNode)
			orphanAt := graph.NodeID(-1)
			for v := 0; v < n; v++ {
				if !contains(bT, graph.NodeID(v)) {
					orphanAt = graph.NodeID(v)
					break
				}
			}
			if orphanAt < 0 {
				t.Fatalf("P(beta) covers the whole graph; cannot park an orphan")
			}

			simAlpha := simRefs["alpha"].(simServer).srv.ID()
			simBeta := simRefs["beta"].(simServer).srv.ID()
			memAlpha := memRefs["alpha"].(*memServer).id
			memBeta := memRefs["beta"].(*memServer).id

			// Seed the identical five-way corruption on both transports
			// through their raw state backdoors. Corruption is silent: it
			// must charge nothing.
			simBefore, memBefore := simT.Passes(), memT.Passes()
			seed := func(
				drop func(v graph.NodeID, port core.Port, id uint64),
				inject func(v graph.NodeID, e core.Entry),
				alphaID, betaID uint64,
			) {
				// Missing posting: one of alpha's rendezvous nodes forgot it.
				drop(aT[0], "alpha", alphaID)
				// Stale epoch: an old address with an ancient timestamp.
				inject(aT[1], core.Entry{Port: "alpha", Addr: graph.NodeID((int(alphaNode) + 5) % n),
					ServerID: alphaID, Time: 1, Active: true})
				// Bit-flip with a poisoned timestamp: the merge rule alone
				// could never displace this entry.
				inject(aT[2], core.Entry{Port: "alpha", Addr: alphaNode ^ 1,
					ServerID: alphaID, Time: corruptMaskTime, Active: true})
				// Orphaned duplicate: beta's posting parked outside P(beta).
				inject(orphanAt, core.Entry{Port: "beta", Addr: betaNode,
					ServerID: betaID, Time: 2, Active: true})
				// Duplicate under the wrong port: alpha's instance cached in
				// gamma's slot.
				inject(aT[0], core.Entry{Port: "gamma", Addr: alphaNode,
					ServerID: alphaID, Time: 2, Active: true})
			}
			seed(simT.sys.ExpireEntry, simT.sys.InjectEntry, simAlpha, simBeta)
			seed(memT.store.Drop, memT.store.Inject, memAlpha, memBeta)
			if simT.Passes() != simBefore || memT.Passes() != memBefore {
				t.Fatalf("corruption seeding charged passes: sim %d mem %d",
					simT.Passes()-simBefore, memT.Passes()-memBefore)
			}

			// Reconcile to quiescence: repairs must finish in one round
			// (the documented bound), with round-by-round sim=mem
			// equivalence on both repair counts and pass charges.
			const maxRounds = 3
			quiescentAt := -1
			for round := 0; round < maxRounds; round++ {
				simBefore, memBefore := simT.Passes(), memT.Passes()
				sr, err := simT.ReconcileRound()
				if err != nil {
					t.Fatal(err)
				}
				simT.Network().Drain()
				mr, err := memT.ReconcileRound()
				if err != nil {
					t.Fatal(err)
				}
				if sr != mr {
					t.Fatalf("round %d: sim repaired %d, mem %d", round, sr, mr)
				}
				simCost := simT.Passes() - simBefore
				memCost := memT.Passes() - memBefore
				if simCost != memCost {
					t.Fatalf("round %d: sim charged %d passes for repair, mem %d", round, simCost, memCost)
				}
				if round == 0 && sr == 0 {
					t.Fatal("round 0 repaired nothing despite seeded corruption")
				}
				if sr == 0 {
					quiescentAt = round
					break
				}
				if simCost == 0 {
					t.Fatalf("round %d repaired %d postings but charged no passes", round, sr)
				}
			}
			if quiescentAt != 1 {
				t.Fatalf("quiescent at round %d, want 1 (all repairs in round 0)", quiescentAt)
			}

			// Ground truth restored: every alpha target holds the honest
			// address again, the orphan and the wrong-port duplicate are
			// gone everywhere.
			for _, ne := range memT.store.DumpRange(0, n) {
				if !ne.E.Active {
					continue
				}
				if ne.E.Port == "alpha" && ne.E.Addr != alphaNode {
					t.Fatalf("mem node %d: alpha posting addr %d after reconcile, want %d",
						ne.Node, ne.E.Addr, alphaNode)
				}
				if ne.E.Port == "beta" && !contains(bT, ne.Node) {
					t.Fatalf("mem node %d: beta orphan survived reconcile", ne.Node)
				}
				if ne.E.Port == "gamma" && ne.E.ServerID == memAlpha {
					t.Fatalf("mem node %d: wrong-port duplicate survived reconcile", ne.Node)
				}
			}
			for v := 0; v < n; v++ {
				for _, e := range simT.sys.CacheEntries(graph.NodeID(v)) {
					if e.Active && e.Port == "alpha" && e.Addr != alphaNode {
						t.Fatalf("sim node %d: alpha posting addr %d after reconcile, want %d", v, e.Addr, alphaNode)
					}
				}
			}

			// And the repaired cluster still answers identically at
			// identical cost.
			for c := 0; c < n; c += 3 {
				client := graph.NodeID(c)
				for _, sc := range script {
					simBefore, memBefore := simT.Passes(), memT.Passes()
					e1, err1 := simT.Locate(client, sc.port)
					simT.Network().Drain()
					e2, err2 := memT.Locate(client, sc.port)
					if err1 != nil || err2 != nil {
						t.Fatalf("post-repair locate %q from %d: sim err=%v mem err=%v",
							sc.port, client, err1, err2)
					}
					if e1.Addr != e2.Addr || e1.Addr != sc.server {
						t.Fatalf("post-repair locate %q from %d: sim %d mem %d want %d",
							sc.port, client, e1.Addr, e2.Addr, sc.server)
					}
					if simCost, memCost := simT.Passes()-simBefore, memT.Passes()-memBefore; simCost != memCost {
						t.Fatalf("post-repair locate %q from %d: sim charged %d, mem %d",
							sc.port, client, simCost, memCost)
					}
				}
			}

			simStats, memStats := simT.ReconcileStats(), memT.ReconcileStats()
			if simStats.Repaired != memStats.Repaired || simStats.Repaired == 0 {
				t.Fatalf("stats: sim repaired %d, mem %d", simStats.Repaired, memStats.Repaired)
			}
		})
	}
}

// TestAntiEntropyCorruptEquivalence drives the deterministic adversarial
// injector against sim and mem with equal options: the plans must be
// isomorphic (equal op counts, zero charge) and reconciliation must heal
// both within the documented bound at exactly equal repair cost.
func TestAntiEntropyCorruptEquivalence(t *testing.T) {
	for _, tc := range equivalenceCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			simT, err := NewSimTransport(tc.g, tc.strat, fastOpts)
			if err != nil {
				t.Fatal(err)
			}
			defer simT.Close()
			memT, err := NewMemTransport(tc.g, tc.strat, 0)
			if err != nil {
				t.Fatal(err)
			}
			defer memT.Close()

			n := tc.g.N()
			regs := []Registration{
				{Port: "alpha", Node: graph.NodeID(n / 3)},
				{Port: "beta", Node: graph.NodeID(n - 1)},
				{Port: "gamma", Node: 0},
			}
			if _, err := simT.PostBatch(regs); err != nil {
				t.Fatal(err)
			}
			simT.Network().Drain()
			if _, err := memT.PostBatch(regs); err != nil {
				t.Fatal(err)
			}

			for _, seedv := range []int64{1, 42, 1985} {
				opts := CorruptOptions{Seed: seedv, Count: 24}
				simBefore, memBefore := simT.Passes(), memT.Passes()
				si, err := simT.Corrupt(opts)
				if err != nil {
					t.Fatal(err)
				}
				mi, err := memT.Corrupt(opts)
				if err != nil {
					t.Fatal(err)
				}
				if si != mi || si != opts.Count {
					t.Fatalf("seed %d: sim injected %d, mem %d, want %d", seedv, si, mi, opts.Count)
				}
				if simT.Passes() != simBefore || memT.Passes() != memBefore {
					t.Fatalf("seed %d: corruption injection charged passes", seedv)
				}

				const maxRounds = 4
				quiescent := false
				for round := 0; round < maxRounds && !quiescent; round++ {
					simBefore, memBefore := simT.Passes(), memT.Passes()
					sr, err := simT.ReconcileRound()
					if err != nil {
						t.Fatal(err)
					}
					simT.Network().Drain()
					mr, err := memT.ReconcileRound()
					if err != nil {
						t.Fatal(err)
					}
					if sr != mr {
						t.Fatalf("seed %d round %d: sim repaired %d, mem %d", seedv, round, sr, mr)
					}
					if simCost, memCost := simT.Passes()-simBefore, memT.Passes()-memBefore; simCost != memCost {
						t.Fatalf("seed %d round %d: sim charged %d, mem %d", seedv, round, simCost, memCost)
					}
					quiescent = sr == 0
				}
				if !quiescent {
					t.Fatalf("seed %d: no quiescence within %d rounds", seedv, maxRounds)
				}

				for c := 0; c < n; c += 4 {
					client := graph.NodeID(c)
					for _, r := range regs {
						e1, err1 := simT.Locate(client, r.Port)
						simT.Network().Drain()
						e2, err2 := memT.Locate(client, r.Port)
						if err1 != nil || err2 != nil {
							t.Fatalf("seed %d: locate %q from %d: sim err=%v mem err=%v",
								seedv, r.Port, client, err1, err2)
						}
						if e1.Addr != r.Node || e2.Addr != r.Node {
							t.Fatalf("seed %d: locate %q from %d: sim %d mem %d want %d",
								seedv, r.Port, client, e1.Addr, e2.Addr, r.Node)
						}
					}
				}
			}

			if s := memT.ReconcileStats(); s.Injected != 3*24 {
				t.Fatalf("mem injected counter = %d, want %d", s.Injected, 3*24)
			}
		})
	}
}

// TestAntiEntropyBackgroundLoop checks the StartReconcile loop heals
// corruption without explicit rounds and that Close stops it cleanly.
func TestAntiEntropyBackgroundLoop(t *testing.T) {
	memT, err := NewMemTransport(topology.Complete(16), rendezvous.Checkerboard(16), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer memT.Close()
	ref, err := memT.Register("alpha", 5)
	if err != nil {
		t.Fatal(err)
	}
	id := ref.(*memServer).id

	memT.StartReconcile(time.Millisecond)
	if _, err := memT.Corrupt(CorruptOptions{Seed: 9, Count: 4}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		s := memT.ReconcileStats()
		if s.Repaired > 0 && s.Rounds > 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background loop never repaired: %+v", s)
		}
		time.Sleep(time.Millisecond)
	}
	// Let it quiesce, then confirm ground truth.
	deadline = time.Now().Add(5 * time.Second)
	for {
		if r, err := memT.ReconcileRound(); err == nil && r == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background loop never reached quiescence")
		}
		time.Sleep(time.Millisecond)
	}
	e, err := memT.Locate(1, "alpha")
	if err != nil || e.Addr != 5 || e.ServerID != id {
		t.Fatalf("locate after background repair: %+v err=%v", e, err)
	}
}
