package cluster

import (
	"slices"
	"time"

	"matchmake/internal/core"
	"matchmake/internal/graph"
)

var _ AntiEntropyTransport = (*SimTransport)(nil)

// ReconcileRound implements AntiEntropyTransport on the paper-exact
// reference: ground truth comes from the engine's live server table and
// its current strategy (already the dual-epoch union during a
// migration), actual state from the per-node engine caches. Orphans
// expire in place via ExpireEntry (free, like epoch GC); missing or
// wrong entries are dropped and re-posted through core.Server.RepostVia
// — a real multicast whose hops the network counts, so the repair
// charge is the genuine article the fast paths are checked against.
func (t *SimTransport) ReconcileRound() (int, error) {
	t.resizeMu.Lock()
	defer t.resizeMu.Unlock()

	strat := t.sys.Strategy()
	srvs := make(map[expectedPair]*core.Server)
	expected := make(map[graph.NodeID]expectedRow)
	for _, srv := range t.sys.LiveServers() {
		node := srv.Node()
		pair := expectedPair{port: srv.Port(), id: srv.ID()}
		srvs[pair] = srv
		for _, v := range strat.Post(node) {
			if t.net.Crashed(v) {
				continue
			}
			row := expected[v]
			if row == nil {
				row = make(expectedRow)
				expected[v] = row
			}
			row.add(pair.port, pair.id, node)
		}
	}

	repaired := 0
	reposts := make(map[expectedPair][]graph.NodeID)
	ports := make(map[core.Port]struct{})
	n := t.net.Graph().N()
	for i := 0; i < n; i++ {
		v := graph.NodeID(i)
		if t.net.Crashed(v) {
			continue
		}
		actual := t.sys.CacheEntries(v)
		exp := expected[v]
		var actDigest uint64
		for _, e := range actual {
			if e.Active {
				actDigest ^= postingDigest(e.Port, e.ServerID, e.Addr)
			}
		}
		if actDigest == exp.digest() {
			continue
		}
		drops, reps := rowDiff(exp, actual)
		for _, p := range drops {
			t.sys.ExpireEntry(v, p.port, p.id)
			ports[p.port] = struct{}{}
			repaired++
		}
		for _, p := range reps {
			reposts[p] = append(reposts[p], v)
		}
	}

	for p, vs := range reposts {
		srv, ok := srvs[p]
		if !ok || t.net.Crashed(srv.Node()) {
			continue
		}
		if err := srv.RepostVia(vs); err != nil {
			continue
		}
		ports[p.port] = struct{}{}
		repaired += len(vs)
	}
	for port := range ports {
		t.gens.bump(port)
	}
	t.recon.rounds.Add(1)
	t.recon.repaired.Add(int64(repaired))
	return repaired, nil
}

// corruptRegs snapshots the live registration ground truth in the
// deterministic (id-sorted) order the corruption and forgery plan
// builders need — the simulator twin of MemTransport.corruptRegs.
func (t *SimTransport) corruptRegs() []corruptReg {
	strat := t.sys.Strategy()
	servers := t.sys.LiveServers()
	regs := make([]corruptReg, 0, len(servers))
	for _, srv := range servers {
		node := srv.Node()
		if t.net.Crashed(node) {
			continue
		}
		regs = append(regs, corruptReg{port: srv.Port(), id: srv.ID(), node: node, targets: strat.Post(node)})
	}
	slices.SortFunc(regs, func(a, b corruptReg) int { return int(a.id) - int(b.id) })
	return regs
}

// Corrupt implements AntiEntropyTransport: the same deterministic plan
// builder as the fast paths, applied through the engine's raw cache
// backdoors (InjectEntry / ExpireEntry).
func (t *SimTransport) Corrupt(opts CorruptOptions) (int, error) {
	plan := buildCorruptPlan(opts, t.corruptRegs(), t.net.Graph().N())
	for _, op := range plan {
		if op.drop {
			t.sys.ExpireEntry(op.node, op.port, op.id)
		} else {
			t.sys.InjectEntry(op.node, op.e)
		}
	}
	t.recon.injected.Add(int64(len(plan)))
	t.gens.bumpAll()
	return len(plan), nil
}

// StartReconcile implements AntiEntropyTransport.
func (t *SimTransport) StartReconcile(interval time.Duration) {
	t.recon.startLoop(interval, t.ReconcileRound)
}

// ReconcileStats implements AntiEntropyTransport.
func (t *SimTransport) ReconcileStats() ReconcileStats { return t.recon.stats() }
