package cluster

import (
	"sync"
	"syscall"
	"testing"
	"time"

	"matchmake/internal/core"
	"matchmake/internal/graph"
	"matchmake/internal/rendezvous"
	"matchmake/internal/strategy"
	"matchmake/internal/topology"
)

// locStep is one scheduled locate of a concurrent coalescing workload.
type locStep struct {
	client graph.NodeID
	port   core.Port
}

// coalSchedule builds a deterministic mixed workload: every client
// cycles the registered ports plus a never-registered one, so the
// schedule exercises hits, replica fallthrough and not-found paths.
func coalSchedule(n, rounds int, ports []core.Port) []locStep {
	var sched []locStep
	for r := 0; r < rounds; r++ {
		for c := 0; c < n; c++ {
			p := ports[(c+r)%len(ports)]
			sched = append(sched, locStep{client: graph.NodeID(c), port: p})
		}
	}
	return sched
}

// runCoalWorkload replays sched against tr with 8 concurrent workers
// (enough overlap for the coalescer to form real batches) and returns
// per-step answers plus the total pass charge of the run.
func runCoalWorkload(t *testing.T, tr Transport, sched []locStep) ([]core.Entry, []string, int64) {
	t.Helper()
	entries := make([]core.Entry, len(sched))
	errs := make([]string, len(sched))
	tr.ResetPasses()
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(sched); i += workers {
				e, err := tr.Locate(sched[i].client, sched[i].port)
				entries[i] = e
				if err != nil {
					errs[i] = err.Error()
				}
			}
		}(w)
	}
	wg.Wait()
	return entries, errs, tr.Passes()
}

// compareCoalRuns pins a coalesced run to its uncoalesced reference:
// identical per-step answers (entry identity and error text) and the
// exact same total pass charge.
func compareCoalRuns(t *testing.T, stage string, sched []locStep,
	refE []core.Entry, refErr []string, refPasses int64,
	gotE []core.Entry, gotErr []string, gotPasses int64) {
	t.Helper()
	for i := range sched {
		if refErr[i] != gotErr[i] {
			t.Fatalf("%s: step %d (client %d port %q): uncoalesced err=%q coalesced err=%q",
				stage, i, sched[i].client, sched[i].port, refErr[i], gotErr[i])
		}
		if refE[i].Addr != gotE[i].Addr || refE[i].ServerID != gotE[i].ServerID || refE[i].Active != gotE[i].Active {
			t.Fatalf("%s: step %d (client %d port %q): uncoalesced %+v != coalesced %+v",
				stage, i, sched[i].client, sched[i].port, refE[i], gotE[i])
		}
	}
	if refPasses != gotPasses {
		t.Fatalf("%s: uncoalesced charged %d passes, coalesced %d (must be exact)", stage, refPasses, gotPasses)
	}
}

// TestNetCoalescedEquivalence pins the wire coalescer's contract: a
// concurrent workload through the coalescer returns exactly the
// answers and charges exactly the passes of the same workload with
// coalescing disabled — including a kill -9'd node shard under r=2
// fallthrough, a CoalesceWindow>0 configuration, and a mid-resize
// dual-epoch elastic cluster.
func TestNetCoalescedEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	const n, procs = 24, 3
	g := topology.Complete(n)
	ports := []core.Port{"alpha", "beta", "gamma", "nope"}
	// Server homes sit in all three shard ranges and inside the
	// mid-resize test's epoch-1 membership (active 18).
	servers := map[core.Port]graph.NodeID{"alpha": 2, "beta": 13, "gamma": 17}

	// newKilledRepl boots an r=2 replicated cluster with its middle
	// shard kill -9'd and quiesced, so replica-0 floods into the dead
	// range must fall through to replica 1.
	newKilledRepl := func(t *testing.T, opts NetOptions) *NetTransport {
		t.Helper()
		rp, err := strategy.NewReplicated(rendezvous.Checkerboard(n), 2)
		if err != nil {
			t.Fatal(err)
		}
		addrs, cmds := spawnNetCluster(t, n, procs)
		netT, err := NewReplicatedNetTransport(g, rp, addrs, opts)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { netT.Close() })
		for _, port := range ports[:3] {
			if _, err := netT.Register(port, servers[port]); err != nil {
				t.Fatal(err)
			}
		}
		lo, _ := PartitionRange(n, procs, 1)
		if err := cmds[1].Process.Signal(syscall.SIGKILL); err != nil {
			t.Fatal(err)
		}
		cmds[1].Wait()
		probe := core.Entry{Port: "alpha", Addr: graph.NodeID(lo + 1), ServerID: 99, Time: 1, Active: true}
		deadline := time.Now().Add(5 * time.Second)
		for {
			if _, err := netT.Probe(0, probe); err != nil {
				break
			}
			if time.Now().After(deadline) {
				t.Fatal("probe into killed process kept succeeding")
			}
			time.Sleep(10 * time.Millisecond)
		}
		return netT
	}

	t.Run("killed-shard", func(t *testing.T) {
		sched := coalSchedule(n, 6, ports)
		ref := newKilledRepl(t, NetOptions{CallTimeout: 10 * time.Second, DisableCoalescing: true})
		refE, refErr, refPasses := runCoalWorkload(t, ref, sched)

		for _, v := range []struct {
			name   string
			window time.Duration
		}{{"window=0", 0}, {"window=300us", 300 * time.Microsecond}} {
			t.Run(v.name, func(t *testing.T) {
				coal := newKilledRepl(t, NetOptions{CallTimeout: 10 * time.Second, CoalesceWindow: v.window})
				gotE, gotErr, gotPasses := runCoalWorkload(t, coal, sched)
				compareCoalRuns(t, v.name, sched, refE, refErr, refPasses, gotE, gotErr, gotPasses)
				if co, fl := coal.CoalesceStats(); v.window > 0 && fl == 0 {
					// With a window the promoted leader always waits for
					// the queue to fill, so shared floods are guaranteed.
					t.Fatalf("coalescer never shared a flood (coalesced=%d floods=%d)", co, fl)
				}
			})
		}
	})

	t.Run("mid-resize", func(t *testing.T) {
		// An elastic cluster frozen mid-transition: epoch 1 (18 active)
		// resized toward epoch 2 (24 active) with FinishResize withheld,
		// so every locate runs the dual-epoch query union.
		newDual := func(t *testing.T, opts NetOptions) *NetTransport {
			t.Helper()
			ep1 := mkEpoch(t, 1, n, 18, 1)
			addrs, _ := spawnNetCluster(t, n, procs)
			netT, err := NewElasticNetTransport(g, ep1, addrs, opts)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { netT.Close() })
			for _, port := range ports[:3] {
				if _, err := netT.Register(port, servers[port]); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := netT.Resize(mkEpoch(t, 2, n, 24, 1)); err != nil {
				t.Fatal(err)
			}
			return netT
		}
		sched := coalSchedule(n, 6, ports)
		ref := newDual(t, NetOptions{CallTimeout: 10 * time.Second, DisableCoalescing: true})
		refE, refErr, refPasses := runCoalWorkload(t, ref, sched)
		coal := newDual(t, NetOptions{CallTimeout: 10 * time.Second})
		gotE, gotErr, gotPasses := runCoalWorkload(t, coal, sched)
		compareCoalRuns(t, "mid-resize", sched, refE, refErr, refPasses, gotE, gotErr, gotPasses)
	})
}
