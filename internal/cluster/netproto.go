package cluster

import (
	"matchmake/internal/core"
	"matchmake/internal/graph"
	"matchmake/internal/netwire"
)

// The node protocol: every request body is a sequence of varint-coded
// fields (see internal/netwire for the frame and codec layer). A node
// process serves a contiguous range of graph nodes; the client-side
// NetTransport fans each match-making operation out to the processes
// owning the involved nodes and keeps the paper's pass accounting
// locally, so the wire layer moves state but never charges costs.
const (
	// opHello returns (n, lo, hi): the graph size the process was built
	// for and the node range it owns. The transport handshakes every
	// process with it and refuses mismatched layouts.
	opHello byte = iota + 1
	// opPost merges postings into the receiver's store: a sequence of
	// (targetNode, entry) items until end of body. Items for crashed or
	// foreign nodes are dropped, matching the fast path's silent skip of
	// crashed rendezvous nodes.
	opPost
	// opQuery reads rendezvous caches: a sequence of sub-requests
	// (port, nodeCount, nodes...). The response answers node by node in
	// request order: flag byte 0 (miss — silent, as in §1.5) or 1
	// followed by the freshest entry.
	opQuery
	// opQueryAll is opQuery returning every active entry per node:
	// response is per node (count, entries...).
	opQueryAll
	// opProbe asks the owner of a hinted address whether (serverID,
	// port) still lives at addr: stOK, stNotFound (live node, negative
	// answer) or stCrashed (the address is down — no answer).
	opProbe
	// opRegister records a server instance (serverID, port, node) in
	// the owner's live table, the table opProbe answers from.
	opRegister
	// opDeregister removes a server instance from the live table.
	opDeregister
	// opCrash marks an owned node failed: postings and queries for it
	// are dropped and its volatile store is cleared.
	opCrash
	// opRestore brings an owned node back (volatile cache stays lost).
	opRestore
	// opExpire drops cached postings by identity: a sequence of
	// (targetNode, port, serverID) triples until end of body. It is the
	// epoch garbage collection of the elastic membership protocol —
	// postings belonging only to a retired epoch expire where they lie.
	// In the paper's model this is each node's local decision, so the
	// operation charges no message passes (the wire is the vehicle, as
	// everywhere else in this protocol).
	opExpire
	// opSnapshot dumps the owned partition state for a node range
	// (request: lo, hi): postings including tombstones as (count, then
	// node+entry each), liveness records as (count, then
	// id+port+node each), and crash marks as (count, then node each).
	// It is the donor side of a coordinator-driven partition transfer
	// when the cluster rescales across a different process set.
	opSnapshot
	// opDigest returns the anti-entropy posting digests for a node range
	// (request: lo, hi): hi−lo uvarints, one per node, each the xor of
	// postingDigest over the node's active cached entries (tombstones
	// excluded). Digest exchange is §5 maintenance metadata, so — like
	// opExpire — it charges no message passes; only the repair traffic a
	// mismatch triggers is charged, at its real multicast cost.
	opDigest
	// opCorrupt is the adversarial state-corruption injector: a sequence
	// of ops until end of body, each a kind byte followed by its operands
	// — 0 drops a cached posting (targetNode, port, serverID), 1 force-
	// injects a raw entry (targetNode, entry) bypassing the §2.1
	// timestamp merge rule. A fault-injection backdoor for chaos testing
	// only; it models silent state corruption, not a protocol message,
	// and charges nothing.
	opCorrupt
	// opArm installs (or, with an empty body, removes) the Byzantine
	// answer-forging plan on a node process: a sequence of records until
	// end of body, each (targetNode, port, silent byte, then — unless
	// silent — the forged entry). An armed node answers opQuery/
	// opQueryAll floods for that port with the forged entry (or not at
	// all) instead of consulting its store. Like opCorrupt it is a chaos
	// backdoor, not a protocol message, and charges nothing; each opArm
	// replaces the process's whole plan, so arming ships one frame to
	// every process (empty for processes with no lying nodes).
	opArm
)

// Response status bytes.
const (
	stOK byte = iota
	stNotFound
	stCrashed
	stBadRequest
)

// appendEntry appends one core.Entry to b in wire form.
func appendEntry(b []byte, e core.Entry) []byte {
	b = netwire.AppendString(b, string(e.Port))
	b = netwire.AppendUvarint(b, uint64(e.Addr))
	b = netwire.AppendUvarint(b, e.ServerID)
	b = netwire.AppendUvarint(b, e.Time)
	if e.Active {
		return append(b, 1)
	}
	return append(b, 0)
}

// decodeEntry consumes one wire-form entry from d.
func decodeEntry(d *netwire.Dec) core.Entry {
	return core.Entry{
		Port:     core.Port(d.String()),
		Addr:     graph.NodeID(d.Uvarint()),
		ServerID: d.Uvarint(),
		Time:     d.Uvarint(),
		Active:   d.Byte() == 1,
	}
}

// decodeEntryFor is decodeEntry reusing port for the entry's port when
// the wire bytes match it — which they always do on a query reply,
// since nodes answer for the port they were asked — so the locate hot
// path decodes entries without copying strings out of the frame
// buffer. A mismatch (a malformed or foreign reply) falls back to the
// copying path rather than mislabeling the entry.
func decodeEntryFor(d *netwire.Dec, port core.Port) core.Entry {
	b := d.Bytes()
	p := port
	if string(b) != string(port) { // compared in place; no allocation
		p = core.Port(b)
	}
	return core.Entry{
		Port:     p,
		Addr:     graph.NodeID(d.Uvarint()),
		ServerID: d.Uvarint(),
		Time:     d.Uvarint(),
		Active:   d.Byte() == 1,
	}
}

// PartitionRange returns the contiguous node range [lo, hi) that
// process i of procs owns in an n-node cluster — the node-shard layout
// cmd/mmctl spawns and NewNetTransport verifies against each process's
// opHello answer.
func PartitionRange(n, procs, i int) (lo, hi int) {
	return i * n / procs, (i + 1) * n / procs
}
