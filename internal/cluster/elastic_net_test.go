package cluster

import (
	"syscall"
	"testing"
	"time"

	"matchmake/internal/core"
	"matchmake/internal/graph"
	"matchmake/internal/rendezvous"
	"matchmake/internal/strategy"
	"matchmake/internal/topology"
)

// TestNetElasticResizeEquivalence drives an epoch transition over a
// real 3-process loopback cluster side by side with the elastic
// in-process transport: identical answers and identical pass charges
// before, during and after the dual-epoch migration, and a migration
// counter equal on both sides to the remap's minimal-movement
// prediction.
func TestNetElasticResizeEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	const universe = 48
	g := topology.Complete(universe)
	ep1 := mkEpoch(t, 1, universe, 36, 1)
	addrs, _ := spawnNetCluster(t, universe, 3)
	memT, err := NewElasticMemTransport(g, ep1, 0)
	if err != nil {
		t.Fatal(err)
	}
	netT, err := NewElasticNetTransport(g, ep1, addrs, NetOptions{CallTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { netT.Close() })

	servers := map[core.Port]graph.NodeID{"alpha": 12, "beta": 35, "gamma": 0}
	var homes []graph.NodeID
	for port, node := range servers {
		if _, err := memT.Register(port, node); err != nil {
			t.Fatal(err)
		}
		if _, err := netT.Register(port, node); err != nil {
			t.Fatal(err)
		}
		homes = append(homes, node)
	}
	checkMemNet := func(stage string, clients int) {
		t.Helper()
		for c := 0; c < clients; c += 3 {
			client := graph.NodeID(c)
			for port := range servers {
				memBefore, netBefore := memT.Passes(), netT.Passes()
				e1, err1 := memT.Locate(client, port)
				e2, err2 := netT.Locate(client, port)
				if (err1 == nil) != (err2 == nil) {
					t.Fatalf("%s: locate %q from %d: mem err=%v net err=%v", stage, port, client, err1, err2)
				}
				if err1 == nil && (e1.Addr != e2.Addr || e1.ServerID != e2.ServerID) {
					t.Fatalf("%s: locate %q from %d: mem %+v != net %+v", stage, port, client, e1, e2)
				}
				if mc, nc := memT.Passes()-memBefore, netT.Passes()-netBefore; mc != nc {
					t.Fatalf("%s: locate %q from %d: mem charged %d passes, net %d", stage, port, client, mc, nc)
				}
			}
		}
	}
	checkMemNet("epoch1", 36)

	ep2 := mkEpoch(t, 2, universe, 48, 1)
	rm, err := strategy.NewRemap(ep1, ep2)
	if err != nil {
		t.Fatal(err)
	}
	want := rm.MovedPosts(homes)
	memBefore, netBefore := memT.Passes(), netT.Passes()
	memMoved, err := memT.Resize(ep2)
	if err != nil {
		t.Fatal(err)
	}
	netMoved, err := netT.Resize(ep2)
	if err != nil {
		t.Fatal(err)
	}
	if memMoved != want || netMoved != want {
		t.Fatalf("moved postings: mem %d, net %d, remap predicts %d", memMoved, netMoved, want)
	}
	if mc, nc := memT.Passes()-memBefore, netT.Passes()-netBefore; mc != nc {
		t.Fatalf("resize migration: mem charged %d passes, net %d", mc, nc)
	}
	checkMemNet("dual", 48)
	if err := memT.FinishResize(); err != nil {
		t.Fatal(err)
	}
	if err := netT.FinishResize(); err != nil {
		t.Fatal(err)
	}
	checkMemNet("epoch2", 48)
}

// TestNetRescale353 is the live 3→5→3 process resize: a replicated
// (r = 2) socket transport re-partitions the same node space across 5
// fresh processes and back to 3, with a kill -9 of one donor before
// the second transfer — the dead donor's ranges are rebuilt from the
// registration mirror (repairRange), so every locate keeps succeeding
// and keeps agreeing with the in-process transport.
func TestNetRescale353(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	const n = 60
	g := topology.Complete(n)
	rp, err := strategy.NewReplicated(rendezvous.Checkerboard(n), 2)
	if err != nil {
		t.Fatal(err)
	}
	addrs3, _ := spawnNetCluster(t, n, 3)
	memT, err := NewReplicatedMemTransport(g, rp, 0)
	if err != nil {
		t.Fatal(err)
	}
	netT, err := NewReplicatedNetTransport(g, rp, addrs3, NetOptions{CallTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { netT.Close() })

	regs := []Registration{
		{Port: "alpha", Node: 7},
		{Port: "beta", Node: 29},
		{Port: "gamma", Node: 51},
	}
	if _, err := memT.PostBatch(regs); err != nil {
		t.Fatal(err)
	}
	if _, err := netT.PostBatch(regs); err != nil {
		t.Fatal(err)
	}
	checkAnswers := func(stage string) {
		t.Helper()
		for c := 0; c < n; c += 4 {
			client := graph.NodeID(c)
			for _, r := range regs {
				e1, err1 := memT.Locate(client, r.Port)
				e2, err2 := netT.Locate(client, r.Port)
				if err1 != nil || err2 != nil {
					t.Fatalf("%s: locate %q from %d: mem err=%v net err=%v", stage, r.Port, client, err1, err2)
				}
				if e1.Addr != e2.Addr || e1.ServerID != e2.ServerID {
					t.Fatalf("%s: locate %q from %d: mem %+v != net %+v", stage, r.Port, client, e1, e2)
				}
			}
		}
	}
	checkAnswers("3-procs")
	if got := netT.Procs(); got != 3 {
		t.Fatalf("Procs() = %d, want 3", got)
	}

	// Grow the process set: 3 → 5, clean handoff.
	addrs5, cmds5 := spawnNetCluster(t, n, 5)
	if err := netT.Rescale(addrs5); err != nil {
		t.Fatal(err)
	}
	if got := netT.Procs(); got != 5 {
		t.Fatalf("Procs() after rescale = %d, want 5", got)
	}
	checkAnswers("5-procs")

	// Shrink back 5 → 3 with one donor killed -9 mid-migration: its
	// partition data is gone, the transfer of those chunks fails, and
	// the repair path (registration mirror re-posts) plus the r = 2
	// fallthrough keep every locate succeeding.
	addrs3b, _ := spawnNetCluster(t, n, 3)
	victim := cmds5[2]
	if err := victim.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	victim.Wait()
	if err := netT.Rescale(addrs3b); err != nil {
		t.Fatal(err)
	}
	if got := netT.Procs(); got != 3 {
		t.Fatalf("Procs() after second rescale = %d, want 3", got)
	}
	checkAnswers("3-procs-after-kill")

	// Lifecycle still works against the rescaled cluster.
	ref, err := netT.Register("delta", 13)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := netT.Locate(2, "delta"); err != nil {
		t.Fatal(err)
	}
	if err := ref.Deregister(); err != nil {
		t.Fatal(err)
	}
}
