package cluster

import (
	"hash/maphash"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"matchmake/internal/core"
	"matchmake/internal/graph"
)

// Options configure a Cluster.
type Options struct {
	// Shards is the number of request shards (rounded up to a power of
	// two). Each shard owns a coalescing table and a worker pool.
	// Zero picks GOMAXPROCS rounded up to a power of two.
	Shards int
	// WorkersPerShard is the number of worker goroutines draining each
	// shard's async queue. Zero means 2.
	WorkersPerShard int
	// QueueDepth bounds each shard's async queue; submissions beyond it
	// are shed with ErrOverload. Zero means 1024.
	QueueDepth int
	// Coalesce merges concurrent locates for the same (client, port)
	// into one underlying query flood. Disabled by DisableCoalescing.
	DisableCoalescing bool
}

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = runtime.GOMAXPROCS(0)
	}
	size := 1
	for size < o.Shards {
		size <<= 1
	}
	o.Shards = size
	if o.WorkersPerShard <= 0 {
		o.WorkersPerShard = 2
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 1024
	}
	return o
}

// Cluster is the serving layer over a Transport: requests are sharded by
// port, each shard coalesces concurrent locates for the same (client,
// port) into one query flood and runs a worker pool for asynchronous
// submissions, and every operation feeds the live metrics.
type Cluster struct {
	tr   Transport
	opts Options
	seed maphash.Seed

	shards []*clusterShard
	// closeMu is read-held across every public operation (and Submit's
	// queue send) so Close — which takes it exclusively — cannot close
	// the queues or the transport while an operation is mid-flight.
	closeMu sync.RWMutex
	closed  atomic.Bool
	wg      sync.WaitGroup

	metrics Metrics
}

// clusterShard owns the coalescing table and worker pool for one slice
// of the port space.
type clusterShard struct {
	mu      sync.Mutex
	flights map[flightKey]*flight
	queue   chan task
}

type flightKey struct {
	client graph.NodeID
	port   core.Port
}

// flight is one in-progress locate shared by coalesced callers.
type flight struct {
	done  chan struct{}
	entry core.Entry
	err   error
}

// task is one asynchronous locate.
type task struct {
	client graph.NodeID
	port   core.Port
	cb     func(core.Entry, error)
}

// New builds a cluster over tr. The cluster does not own the transport's
// lifecycle until Close is called, which closes it.
func New(tr Transport, opts Options) *Cluster {
	c := &Cluster{tr: tr, opts: opts.withDefaults(), seed: maphash.MakeSeed()}
	c.metrics.start(tr)
	c.shards = make([]*clusterShard, c.opts.Shards)
	for i := range c.shards {
		sh := &clusterShard{
			flights: make(map[flightKey]*flight),
			queue:   make(chan task, c.opts.QueueDepth),
		}
		c.shards[i] = sh
		for w := 0; w < c.opts.WorkersPerShard; w++ {
			c.wg.Add(1)
			go c.runWorker(sh)
		}
	}
	return c
}

func (c *Cluster) runWorker(sh *clusterShard) {
	defer c.wg.Done()
	// Workers bypass the closed check so tasks admitted before Close
	// still complete while the queues drain.
	for t := range sh.queue {
		e, err := c.locate(t.client, t.port)
		if t.cb != nil {
			t.cb(e, err)
		}
	}
}

// Transport returns the transport the cluster serves from.
func (c *Cluster) Transport() Transport { return c.tr }

func (c *Cluster) shard(port core.Port) *clusterShard {
	var h maphash.Hash
	h.SetSeed(c.seed)
	h.WriteString(string(port))
	return c.shards[h.Sum64()&uint64(len(c.shards)-1)]
}

// Register announces a server for port at node and counts the posting.
func (c *Cluster) Register(port core.Port, node graph.NodeID) (ServerRef, error) {
	c.closeMu.RLock()
	defer c.closeMu.RUnlock()
	if c.closed.Load() {
		return nil, ErrClosed
	}
	ref, err := c.tr.Register(port, node)
	if err == nil {
		c.metrics.posts.Add(1)
	}
	return ref, err
}

// Locate resolves port from client synchronously. Concurrent locates
// for the same (client, port) share one underlying query flood (unless
// coalescing is disabled): the first caller becomes the flight leader
// and executes the query; later callers wait on the leader's result.
// Every caller is counted and timed in the metrics.
//
// Coalescing weakens read-your-writes: a caller that joins an already
// in-flight query receives a result sampled when that flight started,
// which may predate the caller's own call — e.g. a locate retried
// immediately after a Register returned can re-join a stale flight and
// still miss. Callers that need post-write visibility should disable
// coalescing or retry after the flight's duration (one locate timeout
// on the sim transport).
func (c *Cluster) Locate(client graph.NodeID, port core.Port) (core.Entry, error) {
	c.closeMu.RLock()
	defer c.closeMu.RUnlock()
	if c.closed.Load() {
		return core.Entry{}, ErrClosed
	}
	return c.locate(client, port)
}

func (c *Cluster) locate(client graph.NodeID, port core.Port) (core.Entry, error) {
	begin := time.Now()
	var (
		e   core.Entry
		err error
	)
	if c.opts.DisableCoalescing {
		e, err = c.tr.Locate(client, port)
	} else {
		e, err = c.locateCoalesced(client, port)
	}
	c.metrics.observeLocate(time.Since(begin), err)
	return e, err
}

func (c *Cluster) locateCoalesced(client graph.NodeID, port core.Port) (core.Entry, error) {
	sh := c.shard(port)
	key := flightKey{client: client, port: port}
	sh.mu.Lock()
	if f := sh.flights[key]; f != nil {
		sh.mu.Unlock()
		<-f.done
		c.metrics.coalesced.Add(1)
		return f.entry, f.err
	}
	f := &flight{done: make(chan struct{})}
	sh.flights[key] = f
	sh.mu.Unlock()

	f.entry, f.err = c.tr.Locate(client, port)

	sh.mu.Lock()
	delete(sh.flights, key)
	sh.mu.Unlock()
	close(f.done)
	return f.entry, f.err
}

// Submit enqueues an asynchronous locate on the owning shard's worker
// pool; cb (optional) receives the result on a worker goroutine. When
// the shard queue is full the request is shed immediately with
// ErrOverload — open-loop load beyond capacity fails fast instead of
// queueing without bound.
func (c *Cluster) Submit(client graph.NodeID, port core.Port, cb func(core.Entry, error)) error {
	c.closeMu.RLock()
	defer c.closeMu.RUnlock()
	if c.closed.Load() {
		return ErrClosed
	}
	sh := c.shard(port)
	select {
	case sh.queue <- task{client: client, port: port, cb: cb}:
		return nil
	default:
		c.metrics.shed.Add(1)
		return ErrOverload
	}
}

// LocateAll resolves every live instance of port visible from client.
func (c *Cluster) LocateAll(client graph.NodeID, port core.Port) ([]core.Entry, error) {
	c.closeMu.RLock()
	defer c.closeMu.RUnlock()
	if c.closed.Load() {
		return nil, ErrClosed
	}
	begin := time.Now()
	out, err := c.tr.LocateAll(client, port)
	c.metrics.observeLocate(time.Since(begin), err)
	return out, err
}

// Metrics returns a snapshot of the live serving metrics.
func (c *Cluster) Metrics() MetricsSnapshot { return c.metrics.snapshot(c.tr) }

// ResetMetrics zeroes the counters, the latency histogram and the
// transport pass baseline (useful to measure a steady-state window).
func (c *Cluster) ResetMetrics() { c.metrics.reset(c.tr) }

// Close drains the worker pools and closes the transport. In-flight
// synchronous operations finish first (Close waits for the read side of
// closeMu), pending submissions are completed by the draining workers,
// and Submit and Locate fail with ErrClosed afterwards.
func (c *Cluster) Close() error {
	c.closeMu.Lock()
	if c.closed.Swap(true) {
		c.closeMu.Unlock()
		return nil
	}
	for _, sh := range c.shards {
		close(sh.queue)
	}
	c.closeMu.Unlock()
	c.wg.Wait()
	return c.tr.Close()
}
