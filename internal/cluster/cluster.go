package cluster

import (
	"errors"
	"hash/maphash"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"matchmake/internal/core"
	"matchmake/internal/graph"
	"matchmake/internal/strategy"
)

// Options configure a Cluster.
type Options struct {
	// Shards is the number of request shards (rounded up to a power of
	// two). Each shard owns a coalescing table and a worker pool.
	// Zero picks GOMAXPROCS rounded up to a power of two.
	Shards int
	// WorkersPerShard is the number of worker goroutines draining each
	// shard's async queue. Zero means 2.
	WorkersPerShard int
	// QueueDepth bounds each shard's async queue; submissions beyond it
	// are shed with ErrOverload. Zero means 1024.
	QueueDepth int
	// Coalesce merges concurrent locates for the same (client, port)
	// into one underlying query flood. Disabled by DisableCoalescing.
	DisableCoalescing bool
	// Hints enables the per-client address hint cache: a successful
	// locate caches the resolved entry under the transport's current
	// generation, and later locates for the same (client, port)
	// validate it with one direct probe (2×Dist passes) instead of a
	// full query flood. Stale hints fail fast: migrations,
	// deregistrations, registrations and crashes bump the sharded
	// generation index, and a probe that misses marks the hint dead.
	Hints bool
	// HotPorts, when positive, enables the frequency-weighted strategy
	// loop: the cluster counts per-port locate popularity and promotes
	// the HotPorts most-located ports on a transport that implements
	// HotReclassifier (a weighted MemTransport). Zero disables
	// popularity tracking entirely.
	HotPorts int
	// HotRefresh is the reclassification period when HotPorts is set.
	// Zero disables the background loop; ReclassifyHot can still be
	// called explicitly.
	HotRefresh time.Duration
	// VoteQuorum, when >= 2 on a replicated transport that exposes
	// answerer identity (ByzantineTransport), switches the locate path
	// from first-answer replica fallthrough to answer voting: each
	// locate floods VoteQuorum replica families (clamped to the
	// replication factor), majority-votes the claims by (address,
	// instance), and believes only a strict majority — the defense
	// against rendezvous nodes that lie rather than crash. Nodes
	// contradicted by the majority are quarantined until the next
	// successful reconciliation round; see vote.go. Every extra flood
	// is charged honestly. Zero (or a transport without the seam)
	// keeps the crash-only fallthrough path.
	VoteQuorum int
	// OnEvent, when set, receives lifecycle events: registrations,
	// deregistrations and migrations passing through the cluster, epoch
	// transitions, and — when the transport implements EventSource —
	// crash/restore marks and node-shard process deaths observed below
	// the cluster API. The sink runs inline on the emitting path and
	// must not block; the gate's watch hub is the intended consumer.
	OnEvent EventSink
}

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = runtime.GOMAXPROCS(0)
	}
	size := 1
	for size < o.Shards {
		size <<= 1
	}
	o.Shards = size
	if o.WorkersPerShard <= 0 {
		o.WorkersPerShard = 2
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 1024
	}
	return o
}

// Cluster is the serving layer over a Transport: requests are sharded by
// port, each shard coalesces concurrent locates for the same (client,
// port) into one query flood and runs a worker pool for asynchronous
// submissions, and every operation feeds the live metrics.
type Cluster struct {
	tr   Transport
	opts Options
	seed maphash.Seed

	shards   []*clusterShard
	hints    *hintCache  // nil unless Options.Hints
	genSlots genSlotter  // non-nil when the transport exposes generation slots
	pop      *popularity // nil unless Options.HotPorts > 0
	// repl is the transport's replicated view when it runs an r-fold
	// replicated strategy with r > 1; the cluster then drives the
	// crash-tolerant locate path itself — deterministic replica
	// fallthrough with depth accounting, and hint invalidations that
	// retry the next replica first — instead of the transport's opaque
	// Locate.
	repl ReplicatedTransport
	// byz is the transport's Byzantine seam when answer voting is
	// enabled (Options.VoteQuorum >= 2 on a replicated
	// ByzantineTransport); nil keeps the crash-only fallthrough.
	// suspects is the quarantine set voting maintains (see vote.go).
	byz       ByzantineTransport
	suspectMu sync.Mutex
	suspects  map[graph.NodeID]struct{}
	// closeMu is read-held across every public operation (and Submit's
	// queue send) so Close — which takes it exclusively — cannot close
	// the queues or the transport while an operation is mid-flight.
	closeMu sync.RWMutex
	closed  atomic.Bool
	stopHot chan struct{}
	wg      sync.WaitGroup

	batchScratch sync.Pool // *clusterScratch for hint-aware LocateBatch

	metrics Metrics
}

// clusterScratch is the pooled workspace of a hint-aware LocateBatch:
// the sub-batch of hint misses forwarded to the transport.
type clusterScratch struct {
	reqs  []LocateReq
	res   []LocateRes
	idx   []int
	gens  []uint64
	slots []*atomic.Uint64
}

// popularity is the sharded-on-demand port-popularity counter feeding
// the frequency-weighted strategy: one atomic per port, found through a
// read-locked map, so the count on the locate hot path is two atomic
// operations and no allocation after a port's first locate.
type popularity struct {
	mu sync.RWMutex
	m  map[core.Port]*atomic.Int64
}

func (p *popularity) bump(port core.Port) {
	p.mu.RLock()
	ctr := p.m[port]
	p.mu.RUnlock()
	if ctr == nil {
		p.mu.Lock()
		if ctr = p.m[port]; ctr == nil {
			ctr = new(atomic.Int64)
			p.m[port] = ctr
		}
		p.mu.Unlock()
	}
	ctr.Add(1)
}

// top returns the k most-located ports, most popular first.
func (p *popularity) top(k int) []core.Port {
	type pc struct {
		port  core.Port
		count int64
	}
	p.mu.RLock()
	all := make([]pc, 0, len(p.m))
	for port, ctr := range p.m {
		all = append(all, pc{port: port, count: ctr.Load()})
	}
	p.mu.RUnlock()
	sort.Slice(all, func(i, j int) bool {
		if all[i].count != all[j].count {
			return all[i].count > all[j].count
		}
		return all[i].port < all[j].port
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]core.Port, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].port
	}
	return out
}

// clusterShard owns the coalescing table and worker pool for one slice
// of the port space.
type clusterShard struct {
	mu      sync.Mutex
	flights map[flightKey]*flight
	queue   chan task
}

type flightKey struct {
	client graph.NodeID
	port   core.Port
}

// flight is one in-progress locate shared by coalesced callers; replica
// records which replica family resolved it (always 0 on unreplicated
// transports). Flights are pooled — the uncontended locate fast path
// allocates nothing — so the wait primitive is a mutex held by the
// owner for the flight's lifetime (unlock is the broadcast) and refs
// counts the owner plus every coalesced waiter: joins happen under the
// shard lock while the flight is still published, so no joiner can
// arrive after the owner unpublishes it, and whoever drops the last
// reference returns the flight to the pool.
type flight struct {
	mu      sync.Mutex
	refs    atomic.Int32
	entry   core.Entry
	replica int
	err     error
}

var flightPool = sync.Pool{New: func() any { return new(flight) }}

func (f *flight) release() {
	if f.refs.Add(-1) == 0 {
		flightPool.Put(f)
	}
}

// task is one asynchronous locate.
type task struct {
	client graph.NodeID
	port   core.Port
	cb     func(core.Entry, error)
}

// New builds a cluster over tr. The cluster does not own the transport's
// lifecycle until Close is called, which closes it.
func New(tr Transport, opts Options) *Cluster {
	c := &Cluster{tr: tr, opts: opts.withDefaults(), seed: maphash.MakeSeed(), stopHot: make(chan struct{})}
	if rt, ok := tr.(ReplicatedTransport); ok && rt.Replicas() > 1 {
		c.repl = rt
		if bt, ok := tr.(ByzantineTransport); ok && c.opts.VoteQuorum >= 2 {
			c.byz = bt
			c.suspects = make(map[graph.NodeID]struct{})
		}
	}
	if c.opts.OnEvent != nil {
		if es, ok := tr.(EventSource); ok {
			es.SetEventSink(c.opts.OnEvent)
		}
	}
	c.metrics.start(tr)
	c.batchScratch.New = func() any { return &clusterScratch{} }
	if c.opts.Hints {
		c.hints = newHintCache(tr.N())
		c.genSlots, _ = tr.(genSlotter)
	}
	if c.opts.HotPorts > 0 {
		c.pop = &popularity{m: make(map[core.Port]*atomic.Int64, 64)}
	}
	c.shards = make([]*clusterShard, c.opts.Shards)
	for i := range c.shards {
		sh := &clusterShard{
			flights: make(map[flightKey]*flight, 32),
			queue:   make(chan task, c.opts.QueueDepth),
		}
		c.shards[i] = sh
		for w := 0; w < c.opts.WorkersPerShard; w++ {
			c.wg.Add(1)
			go c.runWorker(sh)
		}
	}
	if c.pop != nil && c.opts.HotRefresh > 0 && reclassifiable(tr) {
		c.wg.Add(1)
		go c.runHotLoop()
	}
	return c
}

// runHotLoop periodically re-derives the hot-port set from the live
// popularity counters and pushes it to the transport.
func (c *Cluster) runHotLoop() {
	defer c.wg.Done()
	tick := time.NewTicker(c.opts.HotRefresh)
	defer tick.Stop()
	for {
		select {
		case <-c.stopHot:
			return
		case <-tick.C:
			_ = c.ReclassifyHot()
		}
	}
}

// ReclassifyHot promotes the currently most-located HotPorts ports on
// the transport's weighted strategy. It fails on transports without one
// or when popularity tracking is disabled.
func (c *Cluster) ReclassifyHot() error {
	if !reclassifiable(c.tr) {
		return errors.New("cluster: transport has no weighted strategy")
	}
	if c.pop == nil {
		return errors.New("cluster: popularity tracking disabled (Options.HotPorts)")
	}
	return c.tr.(HotReclassifier).SetHotPorts(c.pop.top(c.opts.HotPorts))
}

func (c *Cluster) runWorker(sh *clusterShard) {
	defer c.wg.Done()
	// Workers bypass the closed check so tasks admitted before Close
	// still complete while the queues drain.
	for t := range sh.queue {
		e, err := c.locate(t.client, t.port)
		if t.cb != nil {
			t.cb(e, err)
		}
	}
}

// Transport returns the transport the cluster serves from.
func (c *Cluster) Transport() Transport { return c.tr }

func (c *Cluster) shard(port core.Port) *clusterShard {
	var h maphash.Hash
	h.SetSeed(c.seed)
	h.WriteString(string(port))
	return c.shards[h.Sum64()&uint64(len(c.shards)-1)]
}

// Register announces a server for port at node and counts the posting.
func (c *Cluster) Register(port core.Port, node graph.NodeID) (ServerRef, error) {
	c.closeMu.RLock()
	defer c.closeMu.RUnlock()
	if c.closed.Load() {
		return nil, ErrClosed
	}
	ref, err := c.tr.Register(port, node)
	if err == nil {
		c.metrics.posts.Add(1)
		if c.opts.OnEvent != nil {
			c.opts.OnEvent(Event{Type: EvRegister, Port: port, Node: node})
			ref = c.wrapRef(ref)
		}
	}
	return ref, err
}

// Locate resolves port from client synchronously. Concurrent locates
// for the same (client, port) share one underlying query flood (unless
// coalescing is disabled): the first caller becomes the flight leader
// and executes the query; later callers wait on the leader's result.
// Every caller is counted and timed in the metrics.
//
// Coalescing weakens read-your-writes: a caller that joins an already
// in-flight query receives a result sampled when that flight started,
// which may predate the caller's own call — e.g. a locate retried
// immediately after a Register returned can re-join a stale flight and
// still miss. Callers that need post-write visibility should disable
// coalescing or retry after the flight's duration (one locate timeout
// on the sim transport).
func (c *Cluster) Locate(client graph.NodeID, port core.Port) (core.Entry, error) {
	c.closeMu.RLock()
	defer c.closeMu.RUnlock()
	if c.closed.Load() {
		return core.Entry{}, ErrClosed
	}
	return c.locate(client, port)
}

func (c *Cluster) locate(client graph.NodeID, port core.Port) (core.Entry, error) {
	stripe := int(client)
	sampled := c.metrics.sampleLocate(stripe)
	var begin time.Time
	if sampled {
		begin = time.Now()
	}
	if c.pop != nil {
		c.pop.bump(port)
	}
	start := 0
	if c.hints != nil {
		e, ok, retry := c.hintLocate(client, port)
		if ok {
			var d time.Duration
			if sampled {
				d = time.Since(begin)
			}
			c.metrics.observeLocate(stripe, d, sampled, nil)
			return e, nil
		}
		// An invalidated hint steers the fallback flood: the replica
		// that produced the now-dead hint is the one most likely broken
		// by the same crash, so the fallthrough starts at the next
		// family and wraps, instead of re-flooding the suspect first.
		start = retry
	}
	var (
		e       core.Entry
		gen     uint64
		genSlot *atomic.Uint64
		replica int
		err     error
	)
	if c.hints != nil {
		// Sample the generation before the flood: if an invalidation
		// lands mid-flood the cached hint carries a stale generation and
		// the next locate falls back to a fresh flood.
		gen, genSlot = c.genBefore(port)
	}
	if c.opts.DisableCoalescing {
		e, replica, err = c.floodLocate(client, port, start)
	} else {
		e, replica, err = c.locateCoalesced(client, port, start)
	}
	if c.hints != nil && err == nil {
		c.hints.put(client, port, e, gen, genSlot, replica)
	}
	var d time.Duration
	if sampled {
		d = time.Since(begin)
	}
	c.metrics.observeLocate(stripe, d, sampled, err)
	return e, err
}

// genBefore samples port's current generation (and its counter address,
// when the transport exposes one) ahead of a flood.
func (c *Cluster) genBefore(port core.Port) (uint64, *atomic.Uint64) {
	if c.genSlots != nil {
		slot := c.genSlots.genSlot(port)
		return slot.Load(), slot
	}
	return c.tr.Gen(port), nil
}

// hintLocate serves a locate from the address hint cache when possible:
// generation-checked, then confirmed by one direct probe. A failed
// probe marks the hint dead so the pair goes straight to the flood
// until the generation moves. The hit path performs no allocation.
//
// The third result is the replica the fallback flood should start at:
// 0 when there was no usable hint, and — on a replicated transport —
// the family after the one that resolved the invalidated hint when the
// hint was stale (a crash bumps every generation) or its probe failed,
// so the flood retries the next replica before re-flooding the one the
// crash most likely broke.
func (c *Cluster) hintLocate(client graph.NodeID, port core.Port) (core.Entry, bool, int) {
	sl, hv := c.hints.lookup(client, port)
	if sl == nil || hv == nil {
		return core.Entry{}, false, 0
	}
	if hv.dead {
		return core.Entry{}, false, c.nextReplica(hv.replica)
	}
	if hv.stale(c.tr) {
		c.metrics.hintStale.Add(1)
		return core.Entry{}, false, c.nextReplica(hv.replica)
	}
	e, err := c.tr.Probe(client, hv.entry)
	if err != nil {
		c.hints.markDead(sl, hv)
		c.metrics.hintProbeFails.Add(1)
		return core.Entry{}, false, c.nextReplica(hv.replica)
	}
	c.metrics.hintHits.Add(int(client), 1)
	return e, true, 0
}

// nextReplica returns the replica after k in the fallthrough order, or
// 0 on an unreplicated transport.
func (c *Cluster) nextReplica(k int) int {
	if c.repl == nil {
		return 0
	}
	return (k + 1) % c.repl.Replicas()
}

// floodLocate runs the transport flood for one locate. On a replicated
// transport it is the cluster's crash-tolerant locate path: replica
// families are tried in deterministic order from start (wrapping), each
// attempt charged its own flood, with the resolution depth and
// availability fed to the metrics. It returns the replica that
// answered.
func (c *Cluster) floodLocate(client graph.NodeID, port core.Port, start int) (core.Entry, int, error) {
	if c.repl == nil {
		e, err := c.tr.Locate(client, port)
		return e, 0, err
	}
	if c.byz != nil {
		return c.voteLocate(client, port, start)
	}
	e, replica, err := locateFallthrough(c.repl, client, port, start)
	if err == nil {
		r := c.repl.Replicas()
		c.metrics.replicaDepth.Observe((replica - start + r) % r)
	} else if errors.Is(err, core.ErrNotFound) {
		c.metrics.replicaDepth.Fail()
	}
	return e, replica, err
}

func (c *Cluster) locateCoalesced(client graph.NodeID, port core.Port, start int) (core.Entry, int, error) {
	sh := c.shard(port)
	key := flightKey{client: client, port: port}
	sh.mu.Lock()
	if f := sh.flights[key]; f != nil {
		f.refs.Add(1) // join before unpublish: guarded by sh.mu
		sh.mu.Unlock()
		f.mu.Lock() // blocks until the owner's broadcast unlock
		f.mu.Unlock()
		e, replica, err := f.entry, f.replica, f.err
		f.release()
		c.metrics.coalesced.Add(1)
		return e, replica, err
	}
	f := flightPool.Get().(*flight)
	f.refs.Store(1)
	f.mu.Lock()
	sh.flights[key] = f
	sh.mu.Unlock()

	e, replica, err := c.floodLocate(client, port, start)
	f.entry, f.replica, f.err = e, replica, err

	sh.mu.Lock()
	delete(sh.flights, key)
	sh.mu.Unlock()
	f.mu.Unlock()
	f.release()
	return e, replica, err
}

// Submit enqueues an asynchronous locate on the owning shard's worker
// pool; cb (optional) receives the result on a worker goroutine. When
// the shard queue is full the request is shed immediately with
// ErrOverload — open-loop load beyond capacity fails fast instead of
// queueing without bound.
func (c *Cluster) Submit(client graph.NodeID, port core.Port, cb func(core.Entry, error)) error {
	c.closeMu.RLock()
	defer c.closeMu.RUnlock()
	if c.closed.Load() {
		return ErrClosed
	}
	sh := c.shard(port)
	select {
	case sh.queue <- task{client: client, port: port, cb: cb}:
		return nil
	default:
		c.metrics.shed.Add(1)
		return ErrOverload
	}
}

// LocateBatch resolves reqs[i] into res[i] (res must be at least as
// long as reqs) through the transport's batched path: shard-grouped
// store access and bulk pass accounting on the fast path. With hints
// enabled each request first tries its cached address; only the misses
// are forwarded as a sub-batch. Batched locates are not coalesced with
// concurrent single locates; every request is counted and timed in the
// metrics (all requests of a batch share its wall-clock duration).
func (c *Cluster) LocateBatch(reqs []LocateReq, res []LocateRes) error {
	c.closeMu.RLock()
	defer c.closeMu.RUnlock()
	if c.closed.Load() {
		return ErrClosed
	}
	n := len(reqs)
	if n > len(res) {
		return errors.New("cluster: LocateBatch result slice shorter than requests")
	}
	begin := time.Now()
	if c.pop != nil {
		for i := 0; i < n; i++ {
			c.pop.bump(reqs[i].Port)
		}
	}
	if c.hints == nil {
		if c.byz != nil {
			c.voteBatch(reqs, res[:n])
		} else {
			c.tr.LocateBatch(reqs, res[:n])
		}
	} else {
		sc := c.batchScratch.Get().(*clusterScratch)
		sc.reqs, sc.res, sc.idx = sc.reqs[:0], sc.res[:0], sc.idx[:0]
		sc.gens, sc.slots = sc.gens[:0], sc.slots[:0]
		for i := 0; i < n; i++ {
			if e, ok, _ := c.hintLocate(reqs[i].Client, reqs[i].Port); ok {
				res[i] = LocateRes{Entry: e}
				continue
			}
			gen, slot := c.genBefore(reqs[i].Port)
			sc.idx = append(sc.idx, i)
			sc.gens = append(sc.gens, gen)
			sc.slots = append(sc.slots, slot)
			sc.reqs = append(sc.reqs, reqs[i])
		}
		if len(sc.reqs) > 0 {
			if cap(sc.res) < len(sc.reqs) {
				sc.res = make([]LocateRes, len(sc.reqs))
			}
			sc.res = sc.res[:len(sc.reqs)]
			if c.byz != nil {
				c.voteBatch(sc.reqs, sc.res)
			} else {
				c.tr.LocateBatch(sc.reqs, sc.res)
			}
			for j, i := range sc.idx {
				res[i] = sc.res[j]
				if sc.res[j].Err == nil {
					// Batched floods fall through inside the transport,
					// which does not report the resolving replica; record
					// the hint under replica 0, the family the next
					// invalidation's wrap order starts after.
					c.hints.put(reqs[i].Client, reqs[i].Port, sc.res[j].Entry, sc.gens[j], sc.slots[j], 0)
				}
			}
		}
		c.batchScratch.Put(sc)
	}
	elapsed := time.Since(begin)
	for i := 0; i < n; i++ {
		stripe := int(reqs[i].Client)
		sampled := c.metrics.sampleLocate(stripe)
		c.metrics.observeLocate(stripe, elapsed, sampled, res[i].Err)
	}
	return nil
}

// PostBatch registers many servers in one transport operation and
// counts the postings.
func (c *Cluster) PostBatch(regs []Registration) ([]ServerRef, error) {
	c.closeMu.RLock()
	defer c.closeMu.RUnlock()
	if c.closed.Load() {
		return nil, ErrClosed
	}
	refs, err := c.tr.PostBatch(regs)
	c.metrics.posts.Add(int64(len(refs)))
	if c.opts.OnEvent != nil {
		for i, ref := range refs {
			if ref == nil {
				continue
			}
			c.opts.OnEvent(Event{Type: EvRegister, Port: ref.Port(), Node: ref.Node()})
			refs[i] = c.wrapRef(ref)
		}
	}
	return refs, err
}

// LocateAll resolves every live instance of port visible from client.
func (c *Cluster) LocateAll(client graph.NodeID, port core.Port) ([]core.Entry, error) {
	c.closeMu.RLock()
	defer c.closeMu.RUnlock()
	if c.closed.Load() {
		return nil, ErrClosed
	}
	stripe := int(client)
	sampled := c.metrics.sampleLocate(stripe)
	begin := time.Now()
	out, err := c.tr.LocateAll(client, port)
	c.metrics.observeLocate(stripe, time.Since(begin), sampled, err)
	return out, err
}

// Resize forwards an epoch transition to an elastic transport: next
// becomes the serving epoch, live servers re-post the minimal-movement
// delta, and locates keep succeeding throughout via the dual-epoch
// fallthrough. It returns the number of postings moved and fails with
// ErrNotElastic when the transport has no elastic membership.
func (c *Cluster) Resize(next *strategy.Epoch) (int, error) {
	c.closeMu.RLock()
	defer c.closeMu.RUnlock()
	if c.closed.Load() {
		return 0, ErrClosed
	}
	et, ok := c.tr.(ElasticTransport)
	if !ok {
		return 0, ErrNotElastic
	}
	moved, err := et.Resize(next)
	if err == nil && c.opts.OnEvent != nil {
		c.opts.OnEvent(Event{Type: EvEpoch, Epoch: et.Epoch()})
	}
	return moved, err
}

// FinishResize retires the previous epoch on an elastic transport once
// the migration is drained; see ElasticTransport.FinishResize.
func (c *Cluster) FinishResize() error {
	c.closeMu.RLock()
	defer c.closeMu.RUnlock()
	if c.closed.Load() {
		return ErrClosed
	}
	et, ok := c.tr.(ElasticTransport)
	if !ok {
		return ErrNotElastic
	}
	return et.FinishResize()
}

// Metrics returns a snapshot of the live serving metrics.
func (c *Cluster) Metrics() MetricsSnapshot {
	s := c.metrics.snapshot(c.tr)
	if c.byz != nil {
		s.VoteQuorum = c.voteQuorum()
		s.SuspectedNodes = c.suspectCount()
	}
	return s
}

// ResetMetrics zeroes the counters, the latency histogram and the
// transport pass baseline (useful to measure a steady-state window).
func (c *Cluster) ResetMetrics() { c.metrics.reset(c.tr) }

// Close drains the worker pools and closes the transport. In-flight
// synchronous operations finish first (Close waits for the read side of
// closeMu), pending submissions are completed by the draining workers,
// and Submit and Locate fail with ErrClosed afterwards.
func (c *Cluster) Close() error {
	c.closeMu.Lock()
	if c.closed.Swap(true) {
		c.closeMu.Unlock()
		return nil
	}
	close(c.stopHot)
	for _, sh := range c.shards {
		close(sh.queue)
	}
	c.closeMu.Unlock()
	c.wg.Wait()
	return c.tr.Close()
}
