package cluster

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"matchmake/internal/core"
	"matchmake/internal/stats"
)

// histStripes is the number of latency histogram stripes; writers pick
// one by client hint, readers merge them into a scratch histogram.
const histStripes = 8

type stripedHist struct {
	stripes [histStripes]stats.LiveHist
}

func (h *stripedHist) merged() *stats.LiveHist {
	out := &stats.LiveHist{}
	for i := range h.stripes {
		out.Merge(&h.stripes[i])
	}
	return out
}

// Metrics accumulates the cluster's live serving counters. The request
// path touches only striped, cacheline-padded counters (selected by a
// client-id hint), so metrics never serialize the hot path on a shared
// atomic; snapshot reads sum the stripes and race benignly with
// writers.
type Metrics struct {
	locates   stats.StripedCounter
	errors    atomic.Int64 // failures are off the fast path
	notFound  atomic.Int64 // the errors that were rendezvous misses
	coalesced atomic.Int64
	posts     atomic.Int64
	shed      atomic.Int64

	// Hint-cache counters: hintHits are locates served by a confirmed
	// probe (striped — it ticks once per fast-path hit); hintStale are
	// hints skipped on a generation mismatch; hintProbeFails are probes
	// the hinted address failed to confirm (both cold: they precede a
	// full flood).
	hintHits       stats.StripedCounter
	hintStale      atomic.Int64
	hintProbeFails atomic.Int64

	// Answer-voting counters (vote.go), ticking only when
	// Options.VoteQuorum enables the Byzantine locate path:
	// votedLocates counts locates resolved by quorum vote,
	// voteConflicts the votes in which some answer was contradicted by
	// the majority (or proved forged by its port alone).
	votedLocates  atomic.Int64
	voteConflicts atomic.Int64

	// replicaDepth is the crash-tolerance ledger of the replicated
	// locate path: which replica family resolved each flood (depth 0 =
	// first family tried), and how many locates no family could answer.
	// It only ticks on replicated transports.
	replicaDepth stats.DepthCounter

	// latency is swapped wholesale on reset rather than cleared in
	// place: the stripes must not be zeroed under writers, but a pointer
	// swap may — in-flight observations land in whichever window's
	// histogram they loaded, which is the most a live reset can promise.
	latency atomic.Pointer[stripedHist]

	// epoch marks the start of the current measurement window; passes0
	// is the transport pass counter at that instant, and migrated0 /
	// dual0 the elastic transport's cumulative migration counters (so
	// the snapshot reports per-window figures, like Passes).
	epochNanos atomic.Int64
	passes0    atomic.Int64
	migrated0  atomic.Int64
	dual0      atomic.Int64

	// Anti-entropy baselines, captured like the elastic counters so the
	// snapshot reports per-window reconciliation figures.
	reconRounds0   atomic.Int64
	reconRepaired0 atomic.Int64
	reconInjected0 atomic.Int64
}

// latencySampleShift sets the latency sampling rate: 1 in
// 2^latencySampleShift locates is timed and recorded. Reading the
// clock twice costs more than the entire hint-hit serving path, so the
// quantiles come from a deterministic per-stripe 1-in-8 sample — ample
// resolution for p50/p99 under any steady load, at an eighth of the
// observation cost. Max reflects the sampled population.
const latencySampleShift = 3

func (m *Metrics) start(tr Transport) {
	m.latency.Store(&stripedHist{})
	m.epochNanos.Store(time.Now().UnixNano())
	m.passes0.Store(tr.Passes())
	if et, ok := tr.(ElasticTransport); ok && et.Elastic() {
		m.migrated0.Store(et.MigratedPosts())
		m.dual0.Store(et.DualEpochLocates())
	}
	if at, ok := tr.(AntiEntropyTransport); ok {
		rs := at.ReconcileStats()
		m.reconRounds0.Store(rs.Rounds)
		m.reconRepaired0.Store(rs.Repaired)
		m.reconInjected0.Store(rs.Injected)
	}
}

// sampleLocate counts a beginning locate on stripe and reports whether
// this one should be timed.
func (m *Metrics) sampleLocate(stripe int) bool {
	return m.locates.Add(stripe, 1)&(1<<latencySampleShift-1) == 0
}

// observeLocate records a completed locate already counted by
// sampleLocate. stripe is the same cheap spread hint (the client id);
// d is only recorded when sampled is set.
func (m *Metrics) observeLocate(stripe int, d time.Duration, sampled bool, err error) {
	if err != nil {
		m.errors.Add(1)
		if errors.Is(err, core.ErrNotFound) {
			m.notFound.Add(1)
		}
	}
	if sampled {
		m.latency.Load().stripes[stripe&(histStripes-1)].Observe(uint64(d.Nanoseconds()))
	}
}

func (m *Metrics) reset(tr Transport) {
	m.locates.Reset()
	m.errors.Store(0)
	m.notFound.Store(0)
	m.coalesced.Store(0)
	m.posts.Store(0)
	m.shed.Store(0)
	m.hintHits.Reset()
	m.hintStale.Store(0)
	m.hintProbeFails.Store(0)
	m.votedLocates.Store(0)
	m.voteConflicts.Store(0)
	m.replicaDepth.Reset()
	m.start(tr)
}

// MetricsSnapshot is one point-in-time view of the serving metrics.
type MetricsSnapshot struct {
	// Locates counts completed locate calls (including failures);
	// Errors the failed ones; NotFound the errors that were rendezvous
	// misses (no replica family answered) as opposed to a crashed or
	// invalid caller; Coalesced the callers served by another caller's
	// flight; Posts the registrations; Shed the submissions rejected
	// with ErrOverload.
	Locates   int64
	Errors    int64
	NotFound  int64
	Coalesced int64
	Posts     int64
	Shed      int64

	// HintHits counts locates answered by a probe-confirmed address
	// hint; HintStale the hints skipped on a generation mismatch;
	// HintProbeFails the probes that found the hinted address gone.
	// HintHitRate is HintHits/Locates over the window.
	HintHits       int64
	HintStale      int64
	HintProbeFails int64
	HintHitRate    float64

	// Availability is the fraction of serviceable locates the
	// rendezvous machinery answered over the window: rendezvous misses
	// count against it, while locates whose caller was itself crashed
	// or invalid (nothing any name server could do) are excluded from
	// the denominator. 1 when no locate was serviceable.
	// ReplicaFallthroughs counts locates resolved only by a replica
	// family deeper than the first tried, MeanReplicaDepth the average
	// resolution depth of successful replicated floods, and
	// ReplicaDepths the full per-depth distribution; all three stay
	// zero on unreplicated transports. The depth counters cover single
	// locate floods only — batched locates fall through inside the
	// transport, which does not report per-request depth, so a batch's
	// fallthroughs show up in passes and NotFound/Availability but not
	// here.
	Availability        float64
	ReplicaFallthroughs int64
	MeanReplicaDepth    float64
	ReplicaDepths       []int64

	// Answer-voting counters, meaningful only when VoteQuorum is
	// nonzero (Options.VoteQuorum enabled the Byzantine locate path):
	// VoteQuorum is the effective electorate width (the configured
	// quorum clamped to the replication factor), VotedLocates the
	// locates resolved by quorum vote over the window, VoteConflicts
	// the votes that caught some answer contradicting the majority,
	// and SuspectedNodes the rendezvous nodes currently quarantined —
	// a point-in-time gauge, cleared by a successful reconciliation
	// round rather than by ResetMetrics.
	VoteQuorum     int
	VotedLocates   int64
	VoteConflicts  int64
	SuspectedNodes int

	// Elastic membership counters, meaningful only when Elastic is set:
	// Epoch is the serving epoch's sequence number, Resizing whether a
	// dual-epoch migration is draining, MigratedPosts the postings
	// moved by resizes over the window (each resize's count matches the
	// remap's minimal-movement prediction), and DualEpochLocates the
	// locate floods the retiring epoch's rendezvous resolved during
	// dual-epoch phases in the window.
	Elastic          bool
	Epoch            uint64
	Resizing         bool
	MigratedPosts    int64
	DualEpochLocates int64

	// Anti-entropy counters over the window, nonzero only on transports
	// implementing AntiEntropyTransport with the loop (or explicit
	// rounds / corruption injection) in use: ReconcileRounds is the
	// number of completed reconciliation rounds, RepairedPosts the
	// repair actions they took (postings dropped, expired or re-posted
	// against a digest mismatch), and CorruptionsInjected the
	// adversarial operations applied through the corruption injector.
	ReconcileRounds     int64
	RepairedPosts       int64
	CorruptionsInjected int64

	// Elapsed is the measurement window; QPS is Locates/Elapsed.
	Elapsed time.Duration
	QPS     float64

	// Latency quantiles of the locate path, in nanoseconds.
	P50 float64
	P99 float64
	Max uint64

	// Passes is the transport's message-pass count over the window;
	// PassesPerLocate amortizes all match-making traffic in the window
	// (queries, replies, and any posting churn) over the locates.
	Passes          int64
	PassesPerLocate float64
}

func (m *Metrics) snapshot(tr Transport) MetricsSnapshot {
	hist := m.latency.Load().merged()
	s := MetricsSnapshot{
		Locates:             m.locates.Load(),
		Errors:              m.errors.Load(),
		NotFound:            m.notFound.Load(),
		Coalesced:           m.coalesced.Load(),
		Posts:               m.posts.Load(),
		Shed:                m.shed.Load(),
		HintHits:            m.hintHits.Load(),
		HintStale:           m.hintStale.Load(),
		HintProbeFails:      m.hintProbeFails.Load(),
		VotedLocates:        m.votedLocates.Load(),
		VoteConflicts:       m.voteConflicts.Load(),
		Availability:        1,
		ReplicaFallthroughs: m.replicaDepth.Fallthroughs(),
		MeanReplicaDepth:    m.replicaDepth.MeanDepth(),
		Elapsed:             time.Duration(time.Now().UnixNano() - m.epochNanos.Load()),
		P50:                 hist.Quantile(0.50),
		P99:                 hist.Quantile(0.99),
		Max:                 hist.Max(),
		Passes:              tr.Passes() - m.passes0.Load(),
	}
	if m.replicaDepth.Total() > 0 {
		s.ReplicaDepths = m.replicaDepth.Counts()
	}
	if et, ok := tr.(ElasticTransport); ok && et.Elastic() {
		s.Elastic = true
		s.Epoch = et.Epoch()
		s.Resizing = et.Resizing()
		s.MigratedPosts = et.MigratedPosts() - m.migrated0.Load()
		s.DualEpochLocates = et.DualEpochLocates() - m.dual0.Load()
	}
	if at, ok := tr.(AntiEntropyTransport); ok {
		rs := at.ReconcileStats()
		s.ReconcileRounds = rs.Rounds - m.reconRounds0.Load()
		s.RepairedPosts = rs.Repaired - m.reconRepaired0.Load()
		s.CorruptionsInjected = rs.Injected - m.reconInjected0.Load()
	}
	if s.Elapsed > 0 {
		s.QPS = float64(s.Locates) / s.Elapsed.Seconds()
	}
	if s.Locates > 0 {
		s.PassesPerLocate = float64(s.Passes) / float64(s.Locates)
		s.HintHitRate = float64(s.HintHits) / float64(s.Locates)
	}
	if serviceable := s.Locates - (s.Errors - s.NotFound); serviceable > 0 {
		s.Availability = 1 - float64(s.NotFound)/float64(serviceable)
	}
	return s
}

// String renders the snapshot as a one-stanza report.
func (s MetricsSnapshot) String() string {
	out := fmt.Sprintf(
		"locates=%d errors=%d (not-found=%d) coalesced=%d posts=%d shed=%d\n"+
			"elapsed=%v throughput=%.0f locates/sec\n"+
			"latency p50=%v p99=%v max=%v\n"+
			"message passes=%d (%.2f per locate)",
		s.Locates, s.Errors, s.NotFound, s.Coalesced, s.Posts, s.Shed,
		s.Elapsed.Round(time.Millisecond), s.QPS,
		time.Duration(s.P50).Round(100*time.Nanosecond),
		time.Duration(s.P99).Round(100*time.Nanosecond),
		time.Duration(s.Max).Round(100*time.Nanosecond),
		s.Passes, s.PassesPerLocate,
	)
	if s.HintHits > 0 || s.HintStale > 0 || s.HintProbeFails > 0 {
		out += fmt.Sprintf("\nhints: hits=%d (%.1f%% of locates) stale=%d probe-misses=%d",
			s.HintHits, 100*s.HintHitRate, s.HintStale, s.HintProbeFails)
	}
	if s.ReplicaDepths != nil {
		out += fmt.Sprintf("\navailability=%.4f replica fallthroughs=%d mean depth=%.3f depths=%v",
			s.Availability, s.ReplicaFallthroughs, s.MeanReplicaDepth, s.ReplicaDepths)
	} else if s.Errors > 0 {
		out += fmt.Sprintf("\navailability=%.4f", s.Availability)
	}
	if s.VoteQuorum > 0 {
		out += fmt.Sprintf("\nvoting: quorum=%d voted=%d conflicts=%d suspected=%d",
			s.VoteQuorum, s.VotedLocates, s.VoteConflicts, s.SuspectedNodes)
	}
	if s.Elastic {
		out += fmt.Sprintf("\nepoch=%d resizing=%v migrated-posts=%d dual-epoch-locates=%d",
			s.Epoch, s.Resizing, s.MigratedPosts, s.DualEpochLocates)
	}
	if s.ReconcileRounds > 0 || s.RepairedPosts > 0 || s.CorruptionsInjected > 0 {
		out += fmt.Sprintf("\nreconcile: rounds=%d repaired=%d corruptions=%d",
			s.ReconcileRounds, s.RepairedPosts, s.CorruptionsInjected)
	}
	return out
}
