package cluster

import (
	"fmt"
	"sync/atomic"
	"time"

	"matchmake/internal/stats"
)

// Metrics accumulates the cluster's live serving counters. All fields
// are updated atomically on the request path; snapshot reads race
// benignly with writers.
type Metrics struct {
	locates   atomic.Int64
	errors    atomic.Int64
	coalesced atomic.Int64
	posts     atomic.Int64
	shed      atomic.Int64

	// latency is swapped wholesale on reset rather than cleared in
	// place: LiveHist.Reset must not race with writers, but a pointer
	// swap may — in-flight observations land in whichever window's
	// histogram they loaded, which is the most a live reset can promise.
	latency atomic.Pointer[stats.LiveHist]

	// epoch marks the start of the current measurement window; passes0
	// is the transport pass counter at that instant.
	epochNanos atomic.Int64
	passes0    atomic.Int64
}

func (m *Metrics) start(tr Transport) {
	m.latency.Store(&stats.LiveHist{})
	m.epochNanos.Store(time.Now().UnixNano())
	m.passes0.Store(tr.Passes())
}

func (m *Metrics) observeLocate(d time.Duration, err error) {
	m.locates.Add(1)
	if err != nil {
		m.errors.Add(1)
	}
	m.latency.Load().Observe(uint64(d.Nanoseconds()))
}

func (m *Metrics) reset(tr Transport) {
	m.locates.Store(0)
	m.errors.Store(0)
	m.coalesced.Store(0)
	m.posts.Store(0)
	m.shed.Store(0)
	m.start(tr)
}

// MetricsSnapshot is one point-in-time view of the serving metrics.
type MetricsSnapshot struct {
	// Locates counts completed locate calls (including failures);
	// Errors the failed ones; Coalesced the callers served by another
	// caller's flight; Posts the registrations; Shed the submissions
	// rejected with ErrOverload.
	Locates   int64
	Errors    int64
	Coalesced int64
	Posts     int64
	Shed      int64

	// Elapsed is the measurement window; QPS is Locates/Elapsed.
	Elapsed time.Duration
	QPS     float64

	// Latency quantiles of the locate path, in nanoseconds.
	P50 float64
	P99 float64
	Max uint64

	// Passes is the transport's message-pass count over the window;
	// PassesPerLocate amortizes all match-making traffic in the window
	// (queries, replies, and any posting churn) over the locates.
	Passes          int64
	PassesPerLocate float64
}

func (m *Metrics) snapshot(tr Transport) MetricsSnapshot {
	hist := m.latency.Load()
	s := MetricsSnapshot{
		Locates:   m.locates.Load(),
		Errors:    m.errors.Load(),
		Coalesced: m.coalesced.Load(),
		Posts:     m.posts.Load(),
		Shed:      m.shed.Load(),
		Elapsed:   time.Duration(time.Now().UnixNano() - m.epochNanos.Load()),
		P50:       hist.Quantile(0.50),
		P99:       hist.Quantile(0.99),
		Max:       hist.Max(),
		Passes:    tr.Passes() - m.passes0.Load(),
	}
	if s.Elapsed > 0 {
		s.QPS = float64(s.Locates) / s.Elapsed.Seconds()
	}
	if s.Locates > 0 {
		s.PassesPerLocate = float64(s.Passes) / float64(s.Locates)
	}
	return s
}

// String renders the snapshot as a one-stanza report.
func (s MetricsSnapshot) String() string {
	return fmt.Sprintf(
		"locates=%d errors=%d coalesced=%d posts=%d shed=%d\n"+
			"elapsed=%v throughput=%.0f locates/sec\n"+
			"latency p50=%v p99=%v max=%v\n"+
			"message passes=%d (%.2f per locate)",
		s.Locates, s.Errors, s.Coalesced, s.Posts, s.Shed,
		s.Elapsed.Round(time.Millisecond), s.QPS,
		time.Duration(s.P50).Round(100*time.Nanosecond),
		time.Duration(s.P99).Round(100*time.Nanosecond),
		time.Duration(s.Max).Round(100*time.Nanosecond),
		s.Passes, s.PassesPerLocate,
	)
}
