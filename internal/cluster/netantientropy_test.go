package cluster

import (
	"testing"
	"time"

	"matchmake/internal/core"
	"matchmake/internal/graph"
	"matchmake/internal/rendezvous"
	"matchmake/internal/strategy"
	"matchmake/internal/topology"
)

// TestNetCorruptionChaos is the satellite chaos gate on the socket
// backend: waves of deterministic adversarial corruption hit a live
// replicated (r = 2) 3-process loopback cluster and the in-process fast
// path with identical plans, anti-entropy reconciles both to quiescence
// within the documented round bound at identical repair charges, and
// after every wave a full locate sweep has zero failures with net=mem
// answer and charge agreement. A final reconcile round returning zero on
// both transports is the divergence gate.
func TestNetCorruptionChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	const n = 60
	g := topology.Complete(n)
	rp, err := strategy.NewReplicated(rendezvous.Checkerboard(n), 2)
	if err != nil {
		t.Fatal(err)
	}
	addrs, _ := spawnNetCluster(t, n, 3)
	memT, err := NewReplicatedMemTransport(g, rp, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer memT.Close()
	netT, err := NewReplicatedNetTransport(g, rp, addrs, NetOptions{CallTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { netT.Close() })

	regs := []Registration{
		{Port: "alpha", Node: 7},
		{Port: "beta", Node: 29},
		{Port: "gamma", Node: 51},
	}
	if _, err := memT.PostBatch(regs); err != nil {
		t.Fatal(err)
	}
	if _, err := netT.PostBatch(regs); err != nil {
		t.Fatal(err)
	}

	sweep := func(stage string) {
		t.Helper()
		failed := 0
		for c := 0; c < n; c += 4 {
			client := graph.NodeID(c)
			for _, r := range regs {
				memBefore, netBefore := memT.Passes(), netT.Passes()
				e1, err1 := memT.Locate(client, r.Port)
				e2, err2 := netT.Locate(client, r.Port)
				if err1 != nil || err2 != nil {
					failed++
					t.Errorf("%s: locate %q from %d: mem err=%v net err=%v", stage, r.Port, client, err1, err2)
					continue
				}
				if e1.Addr != e2.Addr || e1.ServerID != e2.ServerID || e1.Addr != r.Node {
					t.Fatalf("%s: locate %q from %d: mem %+v net %+v want addr %d",
						stage, r.Port, client, e1, e2, r.Node)
				}
				if mc, nc := memT.Passes()-memBefore, netT.Passes()-netBefore; mc != nc {
					t.Fatalf("%s: locate %q from %d: mem charged %d passes, net %d", stage, r.Port, client, mc, nc)
				}
			}
		}
		if failed != 0 {
			t.Fatalf("%s: %d failed locates, want 0", stage, failed)
		}
	}
	sweep("pre-chaos")

	const waves = 3
	for wave := 0; wave < waves; wave++ {
		opts := CorruptOptions{Seed: int64(100 + wave), Count: 25}
		memBefore, netBefore := memT.Passes(), netT.Passes()
		mi, err := memT.Corrupt(opts)
		if err != nil {
			t.Fatal(err)
		}
		ni, err := netT.Corrupt(opts)
		if err != nil {
			t.Fatal(err)
		}
		if mi != ni || mi != opts.Count {
			t.Fatalf("wave %d: mem injected %d, net %d, want %d", wave, mi, ni, opts.Count)
		}
		if memT.Passes() != memBefore || netT.Passes() != netBefore {
			t.Fatalf("wave %d: corruption injection charged passes", wave)
		}

		const maxRounds = 4
		quiescent := false
		for round := 0; round < maxRounds && !quiescent; round++ {
			memBefore, netBefore := memT.Passes(), netT.Passes()
			mr, err := memT.ReconcileRound()
			if err != nil {
				t.Fatal(err)
			}
			nr, err := netT.ReconcileRound()
			if err != nil {
				t.Fatal(err)
			}
			if mr != nr {
				t.Fatalf("wave %d round %d: mem repaired %d, net %d", wave, round, mr, nr)
			}
			if mc, nc := memT.Passes()-memBefore, netT.Passes()-netBefore; mc != nc {
				t.Fatalf("wave %d round %d: mem charged %d passes for repair, net %d", wave, round, mc, nc)
			}
			quiescent = mr == 0
		}
		if !quiescent {
			t.Fatalf("wave %d: no quiescence within %d rounds", wave, maxRounds)
		}
		sweep("post-wave")
	}

	// Divergence gate: a converged cluster reconciles to zero on both
	// backends.
	if r, err := netT.ReconcileRound(); err != nil || r != 0 {
		t.Fatalf("divergence gate: net reconcile repaired %d err=%v, want 0", r, err)
	}
	if r, err := memT.ReconcileRound(); err != nil || r != 0 {
		t.Fatalf("divergence gate: mem reconcile repaired %d err=%v, want 0", r, err)
	}
	ms, ns := memT.ReconcileStats(), netT.ReconcileStats()
	if ms.Injected != ns.Injected || ms.Injected != waves*25 {
		t.Fatalf("injected counters: mem %d net %d, want %d", ms.Injected, ns.Injected, waves*25)
	}
	if ms.Repaired != ns.Repaired {
		t.Fatalf("repaired counters: mem %d net %d", ms.Repaired, ns.Repaired)
	}
}

// TestNetDualEpochRepairConsistent is the regression gate for the
// repairRange epoch race: a repair running mid-resize (dual-epoch
// phase) must re-post against the same set tables it used for its
// in-range check — one postSets load serving both — so its re-posts
// land exactly on the dual-epoch union ground truth. The reconcile
// round is the oracle: it recomputes every node's expected row from the
// live tables, so any posting the repair placed against a different
// epoch's tables (or skipped) would show up as a nonzero repair count.
func TestNetDualEpochRepairConsistent(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	const universe = 48
	g := topology.Complete(universe)
	ep1 := mkEpoch(t, 1, universe, 36, 1)
	addrs, _ := spawnNetCluster(t, universe, 3)
	memT, err := NewElasticMemTransport(g, ep1, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer memT.Close()
	netT, err := NewElasticNetTransport(g, ep1, addrs, NetOptions{CallTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { netT.Close() })

	servers := map[core.Port]graph.NodeID{"alpha": 12, "beta": 35, "gamma": 0}
	for port, node := range servers {
		if _, err := memT.Register(port, node); err != nil {
			t.Fatal(err)
		}
		if _, err := netT.Register(port, node); err != nil {
			t.Fatal(err)
		}
	}
	if r, err := netT.ReconcileRound(); err != nil || r != 0 {
		t.Fatalf("epoch1 reconcile: repaired %d err=%v, want 0", r, err)
	}

	// Enter the dual-epoch phase and stay there: both epoch tables are
	// live, postings must cover the union of both posting sets.
	ep2 := mkEpoch(t, 2, universe, 48, 1)
	if _, err := memT.Resize(ep2); err != nil {
		t.Fatal(err)
	}
	if _, err := netT.Resize(ep2); err != nil {
		t.Fatal(err)
	}
	if r, err := netT.ReconcileRound(); err != nil || r != 0 {
		t.Fatalf("dual-phase reconcile before repair: repaired %d err=%v, want 0", r, err)
	}

	// Run the repair path mid-dual exactly as the repair loop would for a
	// restarted middle process, under the same lifeMu fence.
	ps := netT.procs.Load()
	lo, hi := ps.ranges[1][0], ps.ranges[1][1]
	netT.lifeMu.RLock()
	netT.repairRange(ps, lo, hi)
	netT.lifeMu.RUnlock()

	// The oracle: repair re-posts carried fresh timestamps but must have
	// landed on exactly the dual-epoch union targets; reconciliation
	// against the live tables finds nothing to fix.
	if r, err := netT.ReconcileRound(); err != nil || r != 0 {
		t.Fatalf("dual-phase reconcile after repairRange: repaired %d err=%v, want 0", r, err)
	}

	// Chaos mid-dual: corruption injected during the migration heals
	// against the union ground truth within the round bound.
	if _, err := netT.Corrupt(CorruptOptions{Seed: 5, Count: 10}); err != nil {
		t.Fatal(err)
	}
	healed := false
	for round := 0; round < 4 && !healed; round++ {
		r, err := netT.ReconcileRound()
		if err != nil {
			t.Fatal(err)
		}
		healed = r == 0
	}
	if !healed {
		t.Fatal("dual-phase corruption did not reconcile within 4 rounds")
	}

	// Land the resize; the settled cluster is still converged and still
	// agrees with the in-process transport.
	if err := memT.FinishResize(); err != nil {
		t.Fatal(err)
	}
	if err := netT.FinishResize(); err != nil {
		t.Fatal(err)
	}
	if r, err := netT.ReconcileRound(); err != nil || r != 0 {
		t.Fatalf("epoch2 reconcile: repaired %d err=%v, want 0", r, err)
	}
	for c := 0; c < universe; c += 3 {
		client := graph.NodeID(c)
		for port, node := range servers {
			e1, err1 := memT.Locate(client, port)
			e2, err2 := netT.Locate(client, port)
			if err1 != nil || err2 != nil {
				t.Fatalf("epoch2 locate %q from %d: mem err=%v net err=%v", port, client, err1, err2)
			}
			if e1.Addr != e2.Addr || e1.Addr != node {
				t.Fatalf("epoch2 locate %q from %d: mem %d net %d want %d", port, client, e1.Addr, e2.Addr, node)
			}
		}
	}
}
