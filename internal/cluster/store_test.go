package cluster

import (
	"fmt"
	"sync"
	"testing"

	"matchmake/internal/core"
	"matchmake/internal/graph"
)

func TestStorePutGetSupersede(t *testing.T) {
	s := NewStore(8, 0)
	node := graph.NodeID(3)
	s.Put(node, core.Entry{Port: "p", Addr: 1, ServerID: 1, Time: 5, Active: true})
	s.Put(node, core.Entry{Port: "p", Addr: 2, ServerID: 1, Time: 9, Active: true})
	// Stale posting for the same instance must be ignored.
	s.Put(node, core.Entry{Port: "p", Addr: 7, ServerID: 1, Time: 4, Active: true})

	e, ok := s.Get(node, "p")
	if !ok || e.Addr != 2 || e.Time != 9 {
		t.Fatalf("Get = %+v, %v; want addr 2 time 9", e, ok)
	}
	if _, ok := s.Get(node, "other"); ok {
		t.Fatal("Get(other) hit on empty port")
	}
	if _, ok := s.Get(graph.NodeID(4), "p"); ok {
		t.Fatal("Get hit on wrong node")
	}
}

func TestStoreTombstone(t *testing.T) {
	s := NewStore(8, 0)
	node := graph.NodeID(0)
	s.Put(node, core.Entry{Port: "p", Addr: 1, ServerID: 1, Time: 1, Active: true})
	s.Put(node, core.Entry{Port: "p", Addr: 1, ServerID: 1, Time: 2, Active: false})
	if _, ok := s.Get(node, "p"); ok {
		t.Fatal("tombstoned entry still visible")
	}
	// A second live instance keeps the port resolvable.
	s.Put(node, core.Entry{Port: "p", Addr: 5, ServerID: 2, Time: 3, Active: true})
	e, ok := s.Get(node, "p")
	if !ok || e.ServerID != 2 {
		t.Fatalf("Get = %+v, %v; want live instance 2", e, ok)
	}
	all := s.GetAll(node, "p")
	if len(all) != 1 || all[0].ServerID != 2 {
		t.Fatalf("GetAll = %v; want only instance 2", all)
	}
}

func TestStoreTombstonePruning(t *testing.T) {
	s := NewStore(4, 0)
	node := graph.NodeID(1)
	// Churn far past the tombstone cap: every instance dies.
	for i := 1; i <= 10*maxSlotTombstones; i++ {
		id := uint64(i)
		s.Put(node, core.Entry{Port: "p", Addr: 0, ServerID: id, Time: s.NextTime(), Active: true})
		s.Put(node, core.Entry{Port: "p", Addr: 0, ServerID: id, Time: s.NextTime(), Active: false})
	}
	sl := s.slot(storeKey{node: node, port: "p"}, false)
	if sl == nil {
		t.Fatal("slot missing")
	}
	if n := len(*sl.entries.Load()); n > maxSlotTombstones+1 {
		t.Fatalf("slot grew to %d entries; want ≤ %d", n, maxSlotTombstones+1)
	}
}

func TestStoreConcurrentPutGet(t *testing.T) {
	s := NewStore(64, 0)
	const (
		writers = 8
		ports   = 16
		rounds  = 200
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				p := core.Port(fmt.Sprintf("port-%d", r%ports))
				node := graph.NodeID(r % 64)
				s.Put(node, core.Entry{
					Port: p, Addr: graph.NodeID(w), ServerID: uint64(w + 1),
					Time: s.NextTime(), Active: true,
				})
				s.Get(node, p)
				s.GetAll(node, p)
			}
		}(w)
	}
	wg.Wait()
	// Every port written at node 0 must resolve to some live instance.
	for i := 0; i < ports; i++ {
		p := core.Port(fmt.Sprintf("port-%d", i))
		found := false
		for v := graph.NodeID(0); v < 64 && !found; v++ {
			_, found = s.Get(v, p)
		}
		if !found {
			t.Fatalf("port %s lost after concurrent writes", p)
		}
	}
}

func TestStoreClearNode(t *testing.T) {
	s := NewStore(8, 0)
	s.Put(2, core.Entry{Port: "p", Addr: 1, ServerID: 1, Time: 1, Active: true})
	s.Put(3, core.Entry{Port: "p", Addr: 1, ServerID: 1, Time: 1, Active: true})
	s.ClearNode(2)
	if _, ok := s.Get(2, "p"); ok {
		t.Fatal("cleared node still answers")
	}
	if _, ok := s.Get(3, "p"); !ok {
		t.Fatal("untouched node lost its entry")
	}
	if s.NodeSize(3) != 1 {
		t.Fatalf("NodeSize(3) = %d; want 1", s.NodeSize(3))
	}
}
