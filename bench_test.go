package matchmake

import (
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"matchmake/internal/cluster"
	"matchmake/internal/core"
	"matchmake/internal/experiments"
	"matchmake/internal/graph"
	"matchmake/internal/rendezvous"
	"matchmake/internal/sim"
	"matchmake/internal/strategy"
	"matchmake/internal/topology"
)

// benchExperiment regenerates one experiment per iteration, reporting the
// number of result tables. Each benchmark corresponds to one paper
// artifact; see DESIGN.md's experiment index.
func benchExperiment(b *testing.B, id string) {
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	b.ReportAllocs()
	tables := 0
	for i := 0; i < b.N; i++ {
		out, err := e.Run()
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		tables = len(out)
	}
	b.ReportMetric(float64(tables), "tables")
}

func BenchmarkE01Matrices(b *testing.B)      { benchExperiment(b, "E1") }
func BenchmarkE02Probabilistic(b *testing.B) { benchExperiment(b, "E2") }
func BenchmarkE03LowerBounds(b *testing.B)   { benchExperiment(b, "E3") }
func BenchmarkE04Checkerboard(b *testing.B)  { benchExperiment(b, "E4") }
func BenchmarkE05Lifting(b *testing.B)       { benchExperiment(b, "E5") }
func BenchmarkE06Manhattan(b *testing.B)     { benchExperiment(b, "E6") }
func BenchmarkE07Hypercube(b *testing.B)     { benchExperiment(b, "E7") }
func BenchmarkE08CCC(b *testing.B)           { benchExperiment(b, "E8") }
func BenchmarkE09Projective(b *testing.B)    { benchExperiment(b, "E9") }
func BenchmarkE10Hierarchy(b *testing.B)     { benchExperiment(b, "E10") }
func BenchmarkE11UUCP(b *testing.B)          { benchExperiment(b, "E11") }
func BenchmarkE12Lighthouse(b *testing.B)    { benchExperiment(b, "E12") }
func BenchmarkE13Hash(b *testing.B)          { benchExperiment(b, "E13") }
func BenchmarkE14Robustness(b *testing.B)    { benchExperiment(b, "E14") }
func BenchmarkE15Ring(b *testing.B)          { benchExperiment(b, "E15") }
func BenchmarkE16Weighted(b *testing.B)      { benchExperiment(b, "E16") }
func BenchmarkE17Decomposition(b *testing.B) { benchExperiment(b, "E17") }
func BenchmarkE18Families(b *testing.B)      { benchExperiment(b, "E18") }

// Micro-benchmarks: steady-state locate costs per topology, reporting the
// paper's cost measure (message passes) per operation.

func benchLocate(b *testing.B, g *graph.Graph, strat rendezvous.Strategy) {
	net, err := sim.New(g)
	if err != nil {
		b.Fatal(err)
	}
	defer net.Close()
	sys, err := core.NewSystem(net, strat, core.Options{LocateTimeout: 2 * time.Second})
	if err != nil {
		b.Fatal(err)
	}
	server := graph.NodeID(g.N() / 3)
	if _, err := sys.RegisterServer("bench", server); err != nil {
		b.Fatal(err)
	}
	clients := make([]graph.NodeID, 16)
	for i := range clients {
		clients[i] = graph.NodeID((i * 7919) % g.N())
	}
	net.ResetCounters()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Locate(clients[i%len(clients)], "bench"); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(net.Hops())/float64(b.N), "hops/op")
	b.ReportMetric(2*math.Sqrt(float64(g.N())), "2√n")
}

func BenchmarkLocateCompleteCheckerboard(b *testing.B) {
	benchLocate(b, topology.Complete(256), rendezvous.Checkerboard(256))
}

func BenchmarkLocateGridManhattan(b *testing.B) {
	gr, err := topology.NewGrid(16, 16)
	if err != nil {
		b.Fatal(err)
	}
	benchLocate(b, gr.G, strategy.Manhattan(gr))
}

func BenchmarkLocateHypercubeHalf(b *testing.B) {
	h, err := topology.NewHypercube(8)
	if err != nil {
		b.Fatal(err)
	}
	s, err := strategy.HalfCube(h)
	if err != nil {
		b.Fatal(err)
	}
	benchLocate(b, h.G, s)
}

func BenchmarkLocateProjectivePlane(b *testing.B) {
	p, err := topology.NewPlane(13)
	if err != nil {
		b.Fatal(err)
	}
	benchLocate(b, p.G, strategy.PlaneLines(p))
}

func BenchmarkLocateRingBroadcast(b *testing.B) {
	g, err := topology.Ring(64)
	if err != nil {
		b.Fatal(err)
	}
	benchLocate(b, g, rendezvous.Broadcast(64))
}

func BenchmarkLocateDecompositionRandom(b *testing.B) {
	g, err := topology.RandomConnected(144, 80, 3)
	if err != nil {
		b.Fatal(err)
	}
	d, err := strategy.NewDecomposition(g)
	if err != nil {
		b.Fatal(err)
	}
	benchLocate(b, g, d.Strategy())
}

// BenchmarkClusterLocate measures the cluster serving layer on a
// 64-node network under Zipfian port popularity, for both transports
// and for the hot-path acceleration layer: hints=off is the cold full
// P∩Q flood, hints=on the probe-validated address-hint path (the
// acceptance bar: ≥5× the PR-1 mem baseline at 0 allocs/op), batch=16
// the shard-grouped LocateBatch, and weighted the frequency-weighted
// strategy with the hottest ports promoted. It reports the paper's cost
// measure (message passes per locate) alongside ns/op, so the perf
// trajectory of the serving path is tracked across PRs.
func BenchmarkClusterLocate(b *testing.B) {
	const (
		n     = 64
		ports = 16
	)
	// Port names are precomputed so the measured loop doesn't bill a
	// Sprintf per locate to the serving path.
	names := make([]core.Port, ports)
	for p := range names {
		names[p] = core.Port(fmt.Sprintf("svc-%04d", p))
	}
	setup := func(b *testing.B, tr cluster.Transport, opts cluster.Options) *cluster.Cluster {
		b.Helper()
		c := cluster.New(tr, opts)
		b.Cleanup(func() { c.Close() })
		for p := 0; p < ports; p++ {
			if _, err := c.Register(names[p], graph.NodeID((p*7919)%n)); err != nil {
				b.Fatal(err)
			}
		}
		return c
	}
	report := func(b *testing.B, tr cluster.Transport, before int64) {
		b.ReportMetric(float64(tr.Passes()-before)/float64(b.N), "passes/locate")
	}
	// The workload tables are sampled once up front so the measured
	// loops don't bill the Zipf sampler's log/exp math to the serving
	// path; every goroutine walks the same tables from a different
	// offset.
	const sampleLen = 1 << 14
	samplePorts := make([]core.Port, sampleLen)
	sampleClients := make([]graph.NodeID, sampleLen)
	{
		rng := rand.New(rand.NewSource(1))
		zipf := rand.NewZipf(rng, 1.2, 1, ports-1)
		for i := range samplePorts {
			samplePorts[i] = names[zipf.Uint64()]
			sampleClients[i] = graph.NodeID(rng.Intn(n))
		}
	}
	runMemParallel := func(b *testing.B, c *cluster.Cluster, tr cluster.Transport) {
		var seq atomic.Int64
		b.ReportAllocs()
		before := tr.Passes()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := int(seq.Add(1)) * 7919
			for pb.Next() {
				i++
				k := i & (sampleLen - 1)
				if _, err := c.Locate(sampleClients[k], samplePorts[k]); err != nil {
					b.Error(err)
					return
				}
			}
		})
		b.StopTimer()
		report(b, tr, before)
	}
	newMem := func(b *testing.B) *cluster.MemTransport {
		tr, err := cluster.NewMemTransport(topology.Complete(n), rendezvous.Checkerboard(n), 0)
		if err != nil {
			b.Fatal(err)
		}
		return tr
	}

	b.Run("transport=mem/hints=off", func(b *testing.B) {
		tr := newMem(b)
		runMemParallel(b, setup(b, tr, cluster.Options{}), tr)
	})

	// The anti-entropy loop enabled but quiescent: digest rounds keep
	// running in the background while the serving path is measured,
	// pinning the self-stabilization layer's idle cost — a converged
	// round is digest-only, charges zero passes and takes no store
	// locks the locate path contends on.
	b.Run("transport=mem/reconcile=idle", func(b *testing.B) {
		tr := newMem(b)
		c := setup(b, tr, cluster.Options{})
		tr.StartReconcile(50 * time.Millisecond)
		runMemParallel(b, c, tr)
	})

	b.Run("transport=mem/hints=on", func(b *testing.B) {
		tr := newMem(b)
		c := setup(b, tr, cluster.Options{Hints: true})
		// Prime every (client, port) hint so the measured loop is the
		// steady-state hit path.
		for cl := 0; cl < n; cl++ {
			for p := 0; p < ports; p++ {
				if _, err := c.Locate(graph.NodeID(cl), names[p]); err != nil {
					b.Fatal(err)
				}
			}
		}
		runMemParallel(b, c, tr)
	})

	b.Run("transport=mem/batch=16", func(b *testing.B) {
		tr := newMem(b)
		c := setup(b, tr, cluster.Options{})
		var seq atomic.Int64
		b.ReportAllocs()
		before := tr.Passes()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := int(seq.Add(1)) * 7919
			reqs := make([]cluster.LocateReq, 16)
			res := make([]cluster.LocateRes, 16)
			for pb.Next() {
				// One iteration = one batched locate: fill a slot per
				// pb.Next() so ns/op stays per-locate comparable.
				i++
				k := i & (sampleLen - 1)
				reqs[0] = cluster.LocateReq{Client: sampleClients[k], Port: samplePorts[k]}
				filled := 1
				for filled < len(reqs) && pb.Next() {
					i++
					k = i & (sampleLen - 1)
					reqs[filled] = cluster.LocateReq{Client: sampleClients[k], Port: samplePorts[k]}
					filled++
				}
				if err := c.LocateBatch(reqs[:filled], res[:filled]); err != nil {
					b.Error(err)
					return
				}
			}
		})
		b.StopTimer()
		report(b, tr, before)
	})

	b.Run("transport=mem/weighted", func(b *testing.B) {
		hot, err := strategy.PostHeavy(n, strategy.AlphaQuerySize(n, 16))
		if err != nil {
			b.Fatal(err)
		}
		w, err := strategy.NewWeighted(rendezvous.Checkerboard(n), hot)
		if err != nil {
			b.Fatal(err)
		}
		tr, err := cluster.NewWeightedMemTransport(topology.Complete(n), w, 0)
		if err != nil {
			b.Fatal(err)
		}
		c := setup(b, tr, cluster.Options{HotPorts: 2})
		// Warm the popularity counters with the Zipf head, then promote.
		warm := rand.NewZipf(rand.New(rand.NewSource(1)), 1.2, 1, ports-1)
		for i := 0; i < 4096; i++ {
			if _, err := c.Locate(graph.NodeID(i%n), names[warm.Uint64()]); err != nil {
				b.Fatal(err)
			}
		}
		if err := c.ReclassifyHot(); err != nil {
			b.Fatal(err)
		}
		runMemParallel(b, c, tr)
	})

	// Voting: the Byzantine-tolerant locate path — every locate floods
	// all r=3 replica families and majority-votes the claims, so the
	// measured delta against transport=mem/hints=off is the price of
	// answer integrity on an honest cluster (~q× flood traffic; see
	// DESIGN.md's Byzantine section and EXPERIMENTS.md).
	b.Run("transport=mem/vote=on", func(b *testing.B) {
		rp, err := strategy.NewReplicated(rendezvous.Checkerboard(n), 3)
		if err != nil {
			b.Fatal(err)
		}
		tr, err := cluster.NewReplicatedMemTransport(topology.Complete(n), rp, 0)
		if err != nil {
			b.Fatal(err)
		}
		runMemParallel(b, setup(b, tr, cluster.Options{VoteQuorum: 3}), tr)
	})

	runSim := func(b *testing.B, opts cluster.Options, prime bool) {
		tr, err := cluster.NewSimTransport(topology.Complete(n), rendezvous.Checkerboard(n),
			core.Options{LocateTimeout: 2 * time.Second, CollectWindow: time.Millisecond})
		if err != nil {
			b.Fatal(err)
		}
		c := setup(b, tr, opts)
		rng := rand.New(rand.NewSource(1))
		zipf := rand.NewZipf(rng, 1.2, 1, ports-1)
		if prime {
			for cl := 0; cl < n; cl++ {
				for p := 0; p < ports; p++ {
					if _, err := c.Locate(graph.NodeID(cl), names[p]); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
		b.ReportAllocs()
		before := tr.Passes()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.Locate(graph.NodeID(rng.Intn(n)), names[zipf.Uint64()]); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		report(b, tr, before)
	}

	b.Run("transport=sim/hints=off", func(b *testing.B) {
		runSim(b, cluster.Options{}, false)
	})

	b.Run("transport=sim/hints=on", func(b *testing.B) {
		runSim(b, cluster.Options{Hints: true}, true)
	})

	// transport=net: the same workload against a real 3-process
	// loopback node-shard cluster (spawned per subtest via the
	// MM_NET_NODE re-exec harness in bench_net_test.go), so the bench
	// gate prices the wire path too. The parallel variants raise
	// SetParallelism so the coalescer sees concurrent locates even on a
	// single-CPU host; coalesce=off runs the identical workload with
	// one flood frame per locate, so the pair is the measured price of
	// the wire coalescer.
	newNet := func(b *testing.B, opts cluster.NetOptions) *cluster.NetTransport {
		addrs := spawnBenchNetCluster(b, n, 3)
		tr, err := cluster.NewNetTransport(topology.Complete(n), rendezvous.Checkerboard(n), addrs, opts)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { tr.Close() })
		return tr
	}
	runNetParallel := func(b *testing.B, c *cluster.Cluster, tr cluster.Transport) {
		var seq atomic.Int64
		b.SetParallelism(8)
		b.ReportAllocs()
		before := tr.Passes()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := int(seq.Add(1)) * 7919
			for pb.Next() {
				i++
				k := i & (sampleLen - 1)
				if _, err := c.Locate(sampleClients[k], samplePorts[k]); err != nil {
					b.Error(err)
					return
				}
			}
		})
		b.StopTimer()
		report(b, tr, before)
	}

	b.Run("transport=net/hints=off", func(b *testing.B) {
		tr := newNet(b, cluster.NetOptions{CallTimeout: 10 * time.Second})
		runNetParallel(b, setup(b, tr, cluster.Options{}), tr)
	})

	b.Run("transport=net/coalesce=off", func(b *testing.B) {
		tr := newNet(b, cluster.NetOptions{CallTimeout: 10 * time.Second, DisableCoalescing: true})
		runNetParallel(b, setup(b, tr, cluster.Options{}), tr)
	})

	b.Run("transport=net/hints=on", func(b *testing.B) {
		tr := newNet(b, cluster.NetOptions{CallTimeout: 10 * time.Second})
		c := setup(b, tr, cluster.Options{Hints: true})
		for cl := 0; cl < n; cl++ {
			for p := 0; p < ports; p++ {
				if _, err := c.Locate(graph.NodeID(cl), names[p]); err != nil {
					b.Fatal(err)
				}
			}
		}
		runNetParallel(b, c, tr)
	})

	b.Run("transport=net/batch=16", func(b *testing.B) {
		tr := newNet(b, cluster.NetOptions{CallTimeout: 10 * time.Second})
		c := setup(b, tr, cluster.Options{})
		var seq atomic.Int64
		b.SetParallelism(8)
		b.ReportAllocs()
		before := tr.Passes()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := int(seq.Add(1)) * 7919
			reqs := make([]cluster.LocateReq, 16)
			res := make([]cluster.LocateRes, 16)
			for pb.Next() {
				// One iteration = one batched locate: fill a slot per
				// pb.Next() so ns/op stays per-locate comparable.
				i++
				k := i & (sampleLen - 1)
				reqs[0] = cluster.LocateReq{Client: sampleClients[k], Port: samplePorts[k]}
				filled := 1
				for filled < len(reqs) && pb.Next() {
					i++
					k = i & (sampleLen - 1)
					reqs[filled] = cluster.LocateReq{Client: sampleClients[k], Port: samplePorts[k]}
					filled++
				}
				if err := c.LocateBatch(reqs[:filled], res[:filled]); err != nil {
					b.Error(err)
					return
				}
			}
		})
		b.StopTimer()
		report(b, tr, before)
	})
}

// BenchmarkClusterStore isolates the sharded rendezvous cache: the
// read-mostly Get path under parallel load, with a trickle of writes.
func BenchmarkClusterStore(b *testing.B) {
	s := cluster.NewStore(64, 0)
	const ports = 64
	for p := 0; p < ports; p++ {
		for v := 0; v < 8; v++ {
			s.Put(graph.NodeID(v*8), core.Entry{
				Port: core.Port(fmt.Sprintf("svc-%04d", p)), Addr: graph.NodeID(p % 64),
				ServerID: uint64(p + 1), Time: s.NextTime(), Active: true,
			})
		}
	}
	var seq atomic.Int64
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(seq.Add(1)))
		i := 0
		for pb.Next() {
			port := core.Port(fmt.Sprintf("svc-%04d", rng.Intn(ports)))
			node := graph.NodeID(rng.Intn(8) * 8)
			if i%1024 == 0 {
				s.Put(node, core.Entry{Port: port, Addr: 1, ServerID: 99, Time: s.NextTime(), Active: true})
			} else {
				s.Get(node, port)
			}
			i++
		}
	})
}

// BenchmarkMatrixBuild measures the analysis path: materializing and
// verifying a rendezvous matrix.
func BenchmarkMatrixBuild(b *testing.B) {
	for _, n := range []int{64, 144, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s := rendezvous.Checkerboard(n)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m, err := rendezvous.Build(s)
				if err != nil {
					b.Fatal(err)
				}
				if err := m.Verify(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Ablation benchmarks: quantify the design choices DESIGN.md calls out.

// BenchmarkAblationPostMulticastVsUnicast compares the spanning-tree
// flood used by the engine against naive per-target unicasts for the
// Manhattan row posting: the flood pays q−1 hops, unicast Θ(q²).
func BenchmarkAblationPostMulticastVsUnicast(b *testing.B) {
	gr, err := topology.NewGrid(16, 16)
	if err != nil {
		b.Fatal(err)
	}
	net, err := sim.New(gr.G)
	if err != nil {
		b.Fatal(err)
	}
	defer net.Close()
	row := gr.Row(7)
	src := gr.At(7, 8)

	b.Run("multicast", func(b *testing.B) {
		net.ResetCounters()
		for i := 0; i < b.N; i++ {
			if _, err := net.Multicast(src, row, "post"); err != nil {
				b.Fatal(err)
			}
		}
		net.Drain()
		b.ReportMetric(float64(net.Hops())/float64(b.N), "hops/op")
	})
	b.Run("unicast", func(b *testing.B) {
		net.ResetCounters()
		for i := 0; i < b.N; i++ {
			for _, target := range row {
				if err := net.Send(src, target, "post"); err != nil {
					b.Fatal(err)
				}
			}
		}
		net.Drain()
		b.ReportMetric(float64(net.Hops())/float64(b.N), "hops/op")
	})
}

// BenchmarkAblationRedundancy quantifies the §2.4 price of fault
// tolerance: posting cost grows linearly with the rendezvous redundancy.
func BenchmarkAblationRedundancy(b *testing.B) {
	for _, r := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("r=%d", r), func(b *testing.B) {
			net, err := sim.New(topology.Complete(64))
			if err != nil {
				b.Fatal(err)
			}
			defer net.Close()
			sys, err := core.NewSystem(net, rendezvous.RedundantCheckerboard(64, r), core.Options{})
			if err != nil {
				b.Fatal(err)
			}
			srv, err := sys.RegisterServer("bench", 9)
			if err != nil {
				b.Fatal(err)
			}
			net.ResetCounters()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := srv.Repost(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(net.Hops())/float64(b.N), "hops/op")
		})
	}
}

// BenchmarkAblationHierarchyDepth sweeps the E10 depth trade-off as a
// benchmark: analytic per-locate message count by hierarchy shape.
func BenchmarkAblationHierarchyDepth(b *testing.B) {
	configs := map[string][]int{
		"k=1": {256},
		"k=2": {16, 16},
		"k=4": {4, 4, 4, 4},
	}
	for name, fanouts := range configs {
		b.Run(name, func(b *testing.B) {
			h, err := topology.NewHierarchy(fanouts...)
			if err != nil {
				b.Fatal(err)
			}
			s := strategy.HierarchyGateways(h)
			msgs := 0
			for i := 0; i < b.N; i++ {
				msgs = len(s.Post(5)) + len(s.Query(200))
			}
			b.ReportMetric(float64(msgs), "msgs/locate")
		})
	}
}

// BenchmarkPartition measures the Erdős √n decomposition.
func BenchmarkPartition(b *testing.B) {
	g, err := topology.RandomConnected(1024, 512, 9)
	if err != nil {
		b.Fatal(err)
	}
	target := int(math.Ceil(math.Sqrt(float64(g.N()))))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := graph.PartitionConnected(g, target); err != nil {
			b.Fatal(err)
		}
	}
}
